#include "sr/trainer.hh"

#include <cmath>

#include "codec/codec.hh"
#include "common/logging.hh"
#include "frame/downsample.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "sr/interpolate.hh"

namespace gssr
{

namespace
{

/** Luma PSNR between two planes (local, avoids metrics dependency). */
f64
lumaPsnr(const PlaneU8 &a, const PlaneU8 &b)
{
    GSSR_ASSERT(a.size() == b.size(), "psnr size mismatch");
    f64 acc = 0.0;
    for (i64 i = 0; i < a.sampleCount(); ++i) {
        f64 d = f64(a.data()[size_t(i)]) - f64(b.data()[size_t(i)]);
        acc += d * d;
    }
    f64 mse = acc / f64(a.sampleCount());
    if (mse <= 0.0)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace

SrTrainer::SrTrainer(CompactSrNet &net, const TrainerConfig &config)
    : net_(net), config_(config)
{
    GSSR_ASSERT(config_.iterations >= 1, "need at least one iteration");
    GSSR_ASSERT(config_.patch_size >= 16, "patch too small");
    GSSR_ASSERT(config_.batch_size >= 1, "batch too small");
}

void
SrTrainer::addPair(PlaneU8 lr_luma, PlaneU8 hr_luma)
{
    int scale = net_.config().scale;
    GSSR_ASSERT(hr_luma.width() == lr_luma.width() * scale &&
                    hr_luma.height() == lr_luma.height() * scale,
                "training pair sizes must differ by the net scale");
    GSSR_ASSERT(lr_luma.width() >= config_.patch_size &&
                    lr_luma.height() >= config_.patch_size,
                "training pair smaller than the patch size");
    pairs_.push_back({std::move(lr_luma), std::move(hr_luma)});
}

f64
SrTrainer::train()
{
    GSSR_ASSERT(!pairs_.empty(), "no training pairs registered");
    Adam::Config adam_config;
    adam_config.learning_rate = config_.learning_rate;
    Adam adam(net_.params(), adam_config);
    Rng rng(config_.seed);

    const int scale = net_.config().scale;
    const int patch = config_.patch_size;
    f64 smoothed_loss = 0.0;
    bool first = true;

    for (int iter = 0; iter < config_.iterations; ++iter) {
        f64 batch_loss = 0.0;
        for (int b = 0; b < config_.batch_size; ++b) {
            const TrainingPair &pair =
                pairs_[size_t(rng.uniformInt(0, int(pairs_.size()) - 1))];
            int max_x = pair.lr_luma.width() - patch;
            int max_y = pair.lr_luma.height() - patch;
            int x = rng.uniformInt(0, max_x);
            int y = rng.uniformInt(0, max_y);
            Tensor input = Tensor::fromPlane(
                pair.lr_luma.crop({x, y, patch, patch}));
            Tensor target = Tensor::fromPlane(pair.hr_luma.crop(
                {x * scale, y * scale, patch * scale, patch * scale}));
            batch_loss += net_.accumulateGradients(input, target);
        }
        adam.step();
        batch_loss /= f64(config_.batch_size);
        smoothed_loss = first ? batch_loss
                              : 0.98 * smoothed_loss + 0.02 * batch_loss;
        first = false;

        // Simple step decay keeps late training stable.
        if (iter == config_.iterations * 2 / 3)
            adam.setLearningRate(config_.learning_rate * 0.3);
    }
    return smoothed_loss;
}

f64
SrTrainer::evaluatePsnr() const
{
    GSSR_ASSERT(!pairs_.empty(), "no pairs to evaluate");
    f64 total = 0.0;
    for (const auto &pair : pairs_) {
        Tensor out = net_.forward(Tensor::fromPlane(pair.lr_luma));
        total += lumaPsnr(out.toPlane(), pair.hr_luma);
    }
    return total / f64(pairs_.size());
}

f64
SrTrainer::bilinearPsnr() const
{
    GSSR_ASSERT(!pairs_.empty(), "no pairs to evaluate");
    f64 total = 0.0;
    for (const auto &pair : pairs_) {
        PlaneU8 up = resizePlane(pair.lr_luma, pair.hr_luma.size(),
                                 InterpKernel::Bilinear);
        total += lumaPsnr(up, pair.hr_luma);
    }
    return total / f64(pairs_.size());
}

CompactSrNet
trainedSrNet(const std::string &cache_path, const TrainerConfig &config)
{
    CompactSrNet net;
    if (!cache_path.empty() && net.load(cache_path)) {
        inform("loaded trained SR weights from ", cache_path);
        return net;
    }

    inform("training CompactSrNet (", config.iterations,
           " iterations) ...");
    SrTrainer trainer(net, config);

    // Training corpus: a few frames from a genre-diverse subset of
    // the Table I worlds. The LR input is what the client actually
    // sees: the box-downsample of the HR render (anti-aliased SSAA
    // frame, see frame/downsample.hh) *after* a codec round trip at
    // the streaming qp — per-content training on the streamed
    // frames, as the NEMO/NAS line of work does. This teaches the
    // net both detail synthesis and compression-artifact
    // suppression.
    const GameId train_games[] = {
        GameId::G1_MetroExodus,
        GameId::G3_Witcher3,
        GameId::G5_GrandTheftAutoV,
        GameId::G10_ForzaHorizon5,
    };
    const Size hr_size{320, 192};
    const Size lr_size{hr_size.width / 2, hr_size.height / 2};
    CodecConfig stream_codec; // default streaming qp
    stream_codec.gop_size = 1;
    for (GameId id : train_games) {
        GameWorld world(id, 42);
        GopEncoder encoder(stream_codec, lr_size);
        FrameDecoder decoder(stream_codec, lr_size);
        for (int frame = 0; frame < 3; ++frame) {
            Scene scene = world.sceneAt(f64(frame) * 0.8);
            ColorImage hr = renderScene(scene, hr_size).color;
            ColorImage lr_decoded = yuv420ToRgb(decoder.decode(
                encoder.encode(boxDownsample(hr, 2))));
            trainer.addPair(toGrayscale(lr_decoded),
                            toGrayscale(hr));
        }
    }

    f64 loss = trainer.train();
    f64 net_psnr = trainer.evaluatePsnr();
    f64 bilinear_psnr = trainer.bilinearPsnr();
    inform("SR training done: loss=", loss, " net=", net_psnr,
           "dB bilinear=", bilinear_psnr, "dB");
    if (net_psnr < bilinear_psnr) {
        warn("trained SR net did not beat bilinear; quality deltas "
             "will be conservative");
    }
    if (!cache_path.empty())
        net.save(cache_path);
    return net;
}

} // namespace gssr
