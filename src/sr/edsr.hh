/**
 * @file
 * EDSR (Lim et al., CVPR-W 2017) network graph — the super-resolution
 * DNN the paper runs on the mobile NPU (16 residual blocks, 64
 * channels, x2). The graph here serves two roles:
 *
 *  1. Faithful per-layer MAC accounting: the NPU latency/energy model
 *     (src/device) consumes EdsrNetwork::macs(), which is what makes
 *     full-frame 720p SR slow and 300x300 RoI SR real-time — the core
 *     trade-off of the paper (Fig. 3).
 *  2. An executable forward pass for validation at small input sizes
 *     (the full 720p forward is ~1.2 TMAC and is never executed on
 *     the host; latency always comes from the device model).
 *
 * Weights are seeded pseudo-random: this graph models *compute*, not
 * *quality*. Quality experiments use the trained CompactSrNet
 * (sr/srcnn.hh); see DESIGN.md §1 for the substitution rationale.
 */

#ifndef GSSR_SR_EDSR_HH
#define GSSR_SR_EDSR_HH

#include <memory>
#include <vector>

#include "nn/layers.hh"

namespace gssr
{

/** EDSR architecture hyperparameters. */
struct EdsrConfig
{
    int residual_blocks = 16; ///< paper: 16
    int channels = 64;        ///< paper: 64
    int scale = 2;            ///< upscale factor (2, 3 or 4)
    int in_channels = 3;      ///< RGB
    f32 residual_scale = 0.1f;
};

/** The EDSR super-resolution network. */
class EdsrNetwork
{
  public:
    explicit EdsrNetwork(const EdsrConfig &config, u64 seed = 7);

    /** Run the network on a (in_channels, h, w) tensor. */
    Tensor forward(const Tensor &input) const;

    /** Exact multiply-accumulate count for an h x w input. */
    i64 macs(int h, int w) const;

    /**
     * MACs of the quality-critical "edge" layers — head, upsample and
     * tail — the ones a NAWQ-style hybrid schedule keeps at wide
     * precision while the residual body runs int8. macs() minus this
     * is the int8 body share (the bulk: ~89 % at EDSR-16/64).
     */
    i64 macsEdge(int h, int w) const;

    /** Total trainable parameter count. */
    i64 parameterCount() const;

    const EdsrConfig &config() const { return config_; }

  private:
    EdsrConfig config_;
    Conv2d head_;
    std::vector<Conv2d> body_; // 2 convs per residual block
    Conv2d body_tail_;
    Conv2d upsample_;
    PixelShuffle shuffle_;
    Conv2d tail_;
};

} // namespace gssr

#endif // GSSR_SR_EDSR_HH
