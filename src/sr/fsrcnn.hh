/**
 * @file
 * FsrcnnNet: an FSRCNN-style (Dong et al., ECCV 2016)
 * shrink-map-expand super-resolution network — the class of
 * *efficient mobile SR architectures* the paper's related work
 * surveys ([43], MobiSR, NAS/pruning [108]). Compared to
 * CompactSrNet it trades a wider feature extractor for a narrow
 * mapping trunk, landing at a different point on the quality /
 * compute curve (see bench_ext_sr_architectures).
 *
 * Architecture (luma, [0,1]):
 *   feature  conv 1->d (5x5) + ReLU
 *   shrink   conv d->s (1x1) + ReLU
 *   map      m x [conv s->s (3x3) + ReLU]
 *   expand   conv s->d (1x1) + ReLU
 *   head     conv d->r^2 (3x3), PixelShuffle(r)
 *   output = bilinear_upscale(input) + residual
 */

#ifndef GSSR_SR_FSRCNN_HH
#define GSSR_SR_FSRCNN_HH

#include <string>
#include <vector>

#include "nn/layers.hh"
#include "nn/optimizer.hh"

namespace gssr
{

/** FsrcnnNet hyperparameters. */
struct FsrcnnConfig
{
    int feature_channels = 16; ///< d
    int shrink_channels = 5;   ///< s
    int mapping_layers = 3;    ///< m
    int scale = 2;
    u64 seed = 5;
};

/** Trainable FSRCNN-style network on single-channel tensors. */
class FsrcnnNet
{
  public:
    FsrcnnNet();

    explicit FsrcnnNet(const FsrcnnConfig &config);

    /** Upscale a (1, h, w) tensor to (1, h*r, w*r). */
    Tensor forward(const Tensor &input) const;

    /** One training accumulation step (see CompactSrNet). */
    f64 accumulateGradients(const Tensor &input, const Tensor &target);

    /** Trainable parameters. */
    std::vector<ParamRef> params();

    /** Multiply-accumulate count for an h x w input. */
    i64 macs(int h, int w) const;

    /** Save/load weights. */
    void save(const std::string &path);
    bool load(const std::string &path);

    const FsrcnnConfig &config() const { return config_; }

  private:
    struct Activations
    {
        std::vector<Tensor> pre;  ///< pre-activation per conv
        std::vector<Tensor> post; ///< post-ReLU per conv
    };

    Tensor forwardInternal(const Tensor &input,
                           Activations *acts) const;

    FsrcnnConfig config_;
    std::vector<Conv2d> convs_; ///< feature..head in order
    PixelShuffle shuffle_;
};

} // namespace gssr

#endif // GSSR_SR_FSRCNN_HH
