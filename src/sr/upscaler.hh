/**
 * @file
 * The upscaler abstraction used by the client pipelines: a common
 * interface over interpolation kernels (GPU path) and the DNN SR
 * model (NPU path), exposing both the executable quality path and
 * the compute cost the device models charge for it.
 */

#ifndef GSSR_SR_UPSCALER_HH
#define GSSR_SR_UPSCALER_HH

#include <memory>
#include <string>

#include "device/models.hh"
#include "frame/image.hh"
#include "sr/edsr.hh"
#include "sr/interpolate.hh"
#include "sr/srcnn.hh"
#include "sr/srcnn_quant.hh"

namespace gssr
{

/** Abstract frame upscaler. */
class Upscaler
{
  public:
    virtual ~Upscaler() = default;

    /** Short identifier ("bilinear", "edsr", ...). */
    virtual std::string name() const = 0;

    /** Upscale @p input by @p factor (both dimensions). */
    virtual ColorImage upscale(const ColorImage &input,
                               int factor) const = 0;

    /**
     * Multiply-accumulate cost of upscaling an @p input -sized frame
     * by @p factor — consumed by the device latency/energy models.
     */
    virtual i64 macs(Size input, int factor) const = 0;
};

/** Interpolation upscaler (bilinear / bicubic / lanczos). */
class InterpUpscaler : public Upscaler
{
  public:
    explicit InterpUpscaler(InterpKernel kernel = InterpKernel::Bilinear)
        : kernel_(kernel)
    {}

    std::string name() const override
    {
        return interpKernelName(kernel_);
    }

    ColorImage
    upscale(const ColorImage &input, int factor) const override
    {
        return resizeImage(input,
                           {input.width() * factor,
                            input.height() * factor},
                           kernel_);
    }

    i64
    macs(Size input, int factor) const override
    {
        return resizeOpCount(
            {input.width * factor, input.height * factor}, kernel_);
    }

  private:
    InterpKernel kernel_;
};

/**
 * DNN super-resolution upscaler.
 *
 * Quality path (executed): the trained CompactSrNet on luma, with
 * bicubic chroma — standard SR practice.
 * Cost path (charged to the NPU device model): the full EDSR-16/64
 * graph, the model the paper deploys. See DESIGN.md §1.
 */
class DnnUpscaler : public Upscaler
{
  public:
    /**
     * @param quality_net trained CompactSrNet (shared, scale 2).
     * @param scale EDSR cost-model scale (2, 3 or 4).
     */
    DnnUpscaler(std::shared_ptr<const CompactSrNet> quality_net,
                int scale = 2);

    std::string name() const override { return "edsr"; }

    ColorImage upscale(const ColorImage &input, int factor) const
        override;

    i64 macs(Size input, int factor) const override;

    /**
     * Upscale at an inference precision (the client ladder's
     * precision knob). Fp32 is byte-for-byte upscale(); quantized
     * modes run the luma through a post-training-quantized net
     * (sr/srcnn_quant.hh), built lazily on first use and calibrated
     * on that first input — deterministic for a deterministic frame
     * stream. Not safe for concurrent calls on one instance (the
     * session drivers are single-threaded per client).
     */
    ColorImage upscaleWithPrecision(const ColorImage &input, int factor,
                                    Precision p) const;

    /**
     * NPU latency/power of one SR invocation at @p p, from the EDSR
     * cost model: uniform precisions charge the whole graph at that
     * width; HybridInt8 charges head/upsample/tail at int16 and the
     * residual body at int8 (macsEdge()). At Fp32 the latency is
     * exactly NpuModel::latencyMs(macs(input, factor), area) and the
     * power is exactly active_power_w, so existing call sites that
     * migrate to this helper stay bit-identical.
     */
    NpuModel::InvocationCost npuCost(const NpuModel &npu, Size input,
                                     int factor, Precision p) const;

    /** The EDSR cost model (for per-layer inspection). */
    const EdsrNetwork &costModel() const { return *cost_model_; }

  private:
    /** Lazily built quantized quality net for a non-Fp32 precision,
     *  calibrated on @p first_input at construction. */
    const QuantizedSrNet &quantNetFor(Precision p,
                                      const Tensor &first_input) const;

    std::shared_ptr<const CompactSrNet> quality_net_;

    /**
     * Per-scale EDSR cost model, shared across every upscaler of the
     * same scale (its construction is deterministic and it is only
     * ever read): a fleet of thousands of accounting-only sessions
     * must not re-run the EDSR weight init once per client.
     */
    std::shared_ptr<const EdsrNetwork> cost_model_;

    /** One slot per non-Fp32 precision (Int16, Int8, HybridInt8). */
    mutable std::unique_ptr<QuantizedSrNet> quant_nets_[3];
};

} // namespace gssr

#endif // GSSR_SR_UPSCALER_HH
