#include "sr/upscaler.hh"

#include "common/mathutil.hh"

namespace gssr
{

namespace
{

/** Full-resolution (4:4:4) YCbCr planes of an RGB image. */
struct Ycbcr444
{
    PlaneU8 y;
    PlaneU8 cb;
    PlaneU8 cr;
};

Ycbcr444
toYcbcr(const ColorImage &rgb)
{
    Ycbcr444 out;
    out.y = PlaneU8(rgb.width(), rgb.height());
    out.cb = PlaneU8(rgb.width(), rgb.height());
    out.cr = PlaneU8(rgb.width(), rgb.height());
    for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
            f64 r = rgb.r().at(x, y);
            f64 g = rgb.g().at(x, y);
            f64 b = rgb.b().at(x, y);
            out.y.at(x, y) =
                toPixel(0.299 * r + 0.587 * g + 0.114 * b);
            out.cb.at(x, y) = toPixel(-0.168736 * r - 0.331264 * g +
                                      0.5 * b + 128.0);
            out.cr.at(x, y) = toPixel(0.5 * r - 0.418688 * g -
                                      0.081312 * b + 128.0);
        }
    }
    return out;
}

ColorImage
fromYcbcr(const Ycbcr444 &ycc)
{
    ColorImage out(ycc.y.width(), ycc.y.height());
    for (int y = 0; y < out.height(); ++y) {
        for (int x = 0; x < out.width(); ++x) {
            f64 yy = ycc.y.at(x, y);
            f64 cb = f64(ycc.cb.at(x, y)) - 128.0;
            f64 cr = f64(ycc.cr.at(x, y)) - 128.0;
            out.r().at(x, y) = toPixel(yy + 1.402 * cr);
            out.g().at(x, y) =
                toPixel(yy - 0.344136 * cb - 0.714136 * cr);
            out.b().at(x, y) = toPixel(yy + 1.772 * cb);
        }
    }
    return out;
}

} // namespace

namespace
{

/**
 * The EDSR cost model at @p scale, built once per process: its
 * construction is deterministic and DnnUpscaler only ever reads it
 * (macs/macsEdge/config), so every upscaler of the same scale can
 * share one instance instead of re-running the weight init per
 * client.
 */
std::shared_ptr<const EdsrNetwork>
sharedCostModel(int scale)
{
    GSSR_ASSERT(scale >= 2 && scale <= 4,
                "EDSR cost model scale must be 2, 3 or 4");
    static const std::shared_ptr<const EdsrNetwork> models[3] = {
        std::make_shared<const EdsrNetwork>(
            EdsrConfig{.residual_blocks = 16,
                       .channels = 64,
                       .scale = 2,
                       .in_channels = 3,
                       .residual_scale = 0.1f}),
        std::make_shared<const EdsrNetwork>(
            EdsrConfig{.residual_blocks = 16,
                       .channels = 64,
                       .scale = 3,
                       .in_channels = 3,
                       .residual_scale = 0.1f}),
        std::make_shared<const EdsrNetwork>(
            EdsrConfig{.residual_blocks = 16,
                       .channels = 64,
                       .scale = 4,
                       .in_channels = 3,
                       .residual_scale = 0.1f})};
    return models[scale - 2];
}

} // namespace

DnnUpscaler::DnnUpscaler(std::shared_ptr<const CompactSrNet> quality_net,
                         int scale)
    : quality_net_(std::move(quality_net)), cost_model_(sharedCostModel(scale))
{
    GSSR_ASSERT(quality_net_ != nullptr, "DnnUpscaler needs a net");
    GSSR_ASSERT(quality_net_->config().scale == 2,
                "quality net must be a x2 model");
}

ColorImage
DnnUpscaler::upscale(const ColorImage &input, int factor) const
{
    GSSR_ASSERT(factor >= 2 && factor <= 4, "unsupported SR factor");
    Ycbcr444 ycc = toYcbcr(input);

    // Luma through the network. The executable quality net is a x2
    // model; x4 applies it twice and x3 refines towards the target
    // with bicubic — quality degrades with the factor, matching the
    // trend of paper Fig. 3a.
    Tensor luma = Tensor::fromPlane(ycc.y);
    Tensor up = quality_net_->forward(luma);
    if (factor == 4)
        up = quality_net_->forward(up);
    PlaneU8 luma_up = up.toPlane();

    Size target{input.width() * factor, input.height() * factor};
    if (luma_up.size() != target)
        luma_up = resizePlane(luma_up, target, InterpKernel::Bicubic);

    Ycbcr444 out;
    out.y = std::move(luma_up);
    out.cb = resizePlane(ycc.cb, target, InterpKernel::Bicubic);
    out.cr = resizePlane(ycc.cr, target, InterpKernel::Bicubic);
    return fromYcbcr(out);
}

namespace
{

/** Slot of a non-Fp32 precision in the lazy quant-net array. */
int
quantSlot(Precision p)
{
    switch (p) {
      case Precision::Int16: return 0;
      case Precision::Int8: return 1;
      case Precision::HybridInt8: return 2;
      case Precision::Fp32: break;
    }
    GSSR_ASSERT(false, "Fp32 has no quantized net slot");
    return 0;
}

} // namespace

const QuantizedSrNet &
DnnUpscaler::quantNetFor(Precision p, const Tensor &first_input) const
{
    std::unique_ptr<QuantizedSrNet> &slot = quant_nets_[quantSlot(p)];
    if (!slot) {
        // Online calibration on the first luma this precision sees:
        // a rendered game frame is representative of the stream, and
        // out-of-range later values saturate by design. Deterministic
        // because the frame stream is.
        std::vector<Tensor> calibration{first_input};
        SrCalibration ranges =
            calibrateSrNet(*quality_net_, calibration);
        slot = std::make_unique<QuantizedSrNet>(
            quality_net_,
            planForPrecision(quality_net_, ranges, calibration, p),
            ranges);
    }
    return *slot;
}

ColorImage
DnnUpscaler::upscaleWithPrecision(const ColorImage &input, int factor,
                                  Precision p) const
{
    if (p == Precision::Fp32)
        return upscale(input, factor);
    GSSR_ASSERT(factor >= 2 && factor <= 4, "unsupported SR factor");
    Ycbcr444 ycc = toYcbcr(input);

    Tensor luma = Tensor::fromPlane(ycc.y);
    const QuantizedSrNet &net = quantNetFor(p, luma);
    Tensor up = net.forward(luma);
    if (factor == 4)
        up = net.forward(up);
    PlaneU8 luma_up = up.toPlane();

    Size target{input.width() * factor, input.height() * factor};
    if (luma_up.size() != target)
        luma_up = resizePlane(luma_up, target, InterpKernel::Bicubic);

    Ycbcr444 out;
    out.y = std::move(luma_up);
    out.cb = resizePlane(ycc.cb, target, InterpKernel::Bicubic);
    out.cr = resizePlane(ycc.cr, target, InterpKernel::Bicubic);
    return fromYcbcr(out);
}

NpuModel::InvocationCost
DnnUpscaler::npuCost(const NpuModel &npu, Size input, int factor,
                     Precision p) const
{
    const i64 total = macs(input, factor);
    const i64 area = input.area();
    if (p == Precision::Fp32)
        return {npu.latencyMs(total, area), npu.active_power_w};
    if (p == Precision::HybridInt8) {
        i64 edge;
        if (factor == cost_model_->config().scale) {
            edge = cost_model_->macsEdge(input.height, input.width);
        } else {
            EdsrConfig config = cost_model_->config();
            config.scale = factor;
            edge = EdsrNetwork(config).macsEdge(input.height,
                                                input.width);
        }
        return npu.hybridCost(edge, total - edge, area);
    }
    return npu.invocationCost(total, area, p);
}

i64
DnnUpscaler::macs(Size input, int factor) const
{
    if (factor == cost_model_->config().scale)
        return cost_model_->macs(input.height, input.width);
    EdsrConfig config = cost_model_->config();
    config.scale = factor;
    return EdsrNetwork(config).macs(input.height, input.width);
}

} // namespace gssr
