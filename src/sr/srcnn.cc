#include "sr/srcnn.hh"

#include "sr/interpolate.hh"

namespace gssr
{

Tensor
bilinearUpscaleTensor(const Tensor &input, int factor)
{
    GSSR_ASSERT(input.channels() == 1, "expected single-channel tensor");
    PlaneF32 plane(input.width(), input.height());
    std::copy(input.data().begin(), input.data().end(),
              plane.data().begin());
    PlaneF32 up = resizePlane(
        plane, {input.width() * factor, input.height() * factor},
        InterpKernel::Bilinear);
    Tensor out(1, up.height(), up.width());
    std::copy(up.data().begin(), up.data().end(), out.data().begin());
    return out;
}

CompactSrNet::CompactSrNet() : CompactSrNet(CompactSrConfig{}) {}

CompactSrNet::CompactSrNet(const CompactSrConfig &config)
    : config_(config),
      conv1_(1, config.channels, 3),
      conv2_(config.channels, config.channels, 3),
      conv3_(config.channels, config.scale * config.scale, 3),
      shuffle_(config.scale)
{
    GSSR_ASSERT(config.channels >= 1, "need at least one channel");
    GSSR_ASSERT(config.scale >= 2, "SR scale must be >= 2");
    Rng rng(config.seed);
    conv1_.initHe(rng);
    conv2_.initHe(rng);
    conv3_.initHe(rng);
    // Start the residual branch near zero so the initial output is
    // (almost) exactly the bilinear baseline.
    for (auto &w : conv3_.weights())
        w *= 0.01f;
}

Tensor
CompactSrNet::forwardInternal(const Tensor &input,
                              Activations *acts) const
{
    Tensor z1 = conv1_.forward(input);
    Tensor a1 = Relu::forward(z1);
    Tensor z2 = conv2_.forward(a1);
    Tensor a2 = Relu::forward(z2);
    Tensor z3 = conv3_.forward(a2);
    Tensor up = shuffle_.forward(z3);
    Tensor base = bilinearUpscaleTensor(input, config_.scale);
    Tensor out = std::move(up);
    out.add(base);
    if (acts) {
        acts->z1 = std::move(z1);
        acts->a1 = std::move(a1);
        acts->z2 = std::move(z2);
        acts->a2 = std::move(a2);
        acts->base = std::move(base);
    }
    return out;
}

Tensor
CompactSrNet::forward(const Tensor &input) const
{
    return forwardInternal(input, nullptr);
}

f64
CompactSrNet::accumulateGradients(const Tensor &input,
                                  const Tensor &target)
{
    Activations acts;
    Tensor prediction = forwardInternal(input, &acts);

    Tensor grad;
    f64 loss = mseLoss(prediction, target, grad);

    // The bilinear base has no parameters; the gradient flows only
    // through the residual branch.
    Tensor g_z3 = shuffle_.backward(grad);
    Tensor g_a2 = conv3_.backward(acts.a2, g_z3);
    Tensor g_z2 = Relu::backward(acts.z2, g_a2);
    Tensor g_a1 = conv2_.backward(acts.a1, g_z2);
    Tensor g_z1 = Relu::backward(acts.z1, g_a1);
    conv1_.backward(input, g_z1);
    return loss;
}

std::vector<ParamRef>
CompactSrNet::params()
{
    std::vector<ParamRef> out;
    for (auto &p : conv1_.params())
        out.push_back(p);
    for (auto &p : conv2_.params())
        out.push_back(p);
    for (auto &p : conv3_.params())
        out.push_back(p);
    return out;
}

i64
CompactSrNet::macs(int h, int w) const
{
    return conv1_.macs(h, w) + conv2_.macs(h, w) + conv3_.macs(h, w);
}

void
CompactSrNet::save(const std::string &path)
{
    saveParams(path, params());
}

bool
CompactSrNet::load(const std::string &path)
{
    return loadParams(path, params());
}

} // namespace gssr
