#include "sr/edsr.hh"

namespace gssr
{

EdsrNetwork::EdsrNetwork(const EdsrConfig &config, u64 seed)
    : config_(config),
      head_(config.in_channels, config.channels, 3),
      body_tail_(config.channels, config.channels, 3),
      upsample_(config.channels, config.channels * config.scale *
                                     config.scale,
                3),
      shuffle_(config.scale),
      tail_(config.channels, config.in_channels, 3)
{
    GSSR_ASSERT(config.residual_blocks >= 1, "EDSR needs >= 1 block");
    GSSR_ASSERT(config.scale >= 1 && config.scale <= 4,
                "EDSR scale must be 1..4");
    Rng rng(seed);
    head_.initHe(rng);
    body_.reserve(size_t(config.residual_blocks) * 2);
    for (int i = 0; i < config.residual_blocks * 2; ++i) {
        body_.emplace_back(config.channels, config.channels, 3);
        body_.back().initHe(rng);
    }
    body_tail_.initHe(rng);
    upsample_.initHe(rng);
    tail_.initHe(rng);
}

Tensor
EdsrNetwork::forward(const Tensor &input) const
{
    Tensor features = head_.forward(input);
    Tensor skip = features;
    for (int block = 0; block < config_.residual_blocks; ++block) {
        const Conv2d &conv1 = body_[size_t(block) * 2];
        const Conv2d &conv2 = body_[size_t(block) * 2 + 1];
        Tensor t = conv2.forward(Relu::forward(conv1.forward(features)));
        for (auto &v : t.data())
            v *= config_.residual_scale;
        t.add(features);
        features = std::move(t);
    }
    features = body_tail_.forward(features);
    features.add(skip);
    Tensor up = shuffle_.forward(upsample_.forward(features));
    return tail_.forward(up);
}

i64
EdsrNetwork::macs(int h, int w) const
{
    i64 total = head_.macs(h, w);
    for (const auto &conv : body_)
        total += conv.macs(h, w);
    total += body_tail_.macs(h, w);
    total += upsample_.macs(h, w);
    total += tail_.macs(h * config_.scale, w * config_.scale);
    return total;
}

i64
EdsrNetwork::macsEdge(int h, int w) const
{
    return head_.macs(h, w) + upsample_.macs(h, w) +
           tail_.macs(h * config_.scale, w * config_.scale);
}

i64
EdsrNetwork::parameterCount() const
{
    auto count = [](const Conv2d &conv) {
        return i64(conv.weights().size()) + i64(conv.biases().size());
    };
    i64 total = count(head_) + count(body_tail_) + count(upsample_) +
                count(tail_);
    for (const auto &conv : body_)
        total += count(conv);
    return total;
}

} // namespace gssr
