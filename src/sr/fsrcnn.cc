#include "sr/fsrcnn.hh"

#include "sr/srcnn.hh" // bilinearUpscaleTensor

namespace gssr
{

FsrcnnNet::FsrcnnNet() : FsrcnnNet(FsrcnnConfig{}) {}

FsrcnnNet::FsrcnnNet(const FsrcnnConfig &config)
    : config_(config), shuffle_(config.scale)
{
    GSSR_ASSERT(config.feature_channels >= 1 &&
                    config.shrink_channels >= 1 &&
                    config.mapping_layers >= 1,
                "invalid FSRCNN configuration");
    GSSR_ASSERT(config.scale >= 2, "SR scale must be >= 2");

    const int d = config.feature_channels;
    const int s = config.shrink_channels;
    convs_.emplace_back(1, d, 5); // feature
    convs_.emplace_back(d, s, 1); // shrink
    for (int i = 0; i < config.mapping_layers; ++i)
        convs_.emplace_back(s, s, 3); // mapping trunk
    convs_.emplace_back(s, d, 1);     // expand
    convs_.emplace_back(d, config.scale * config.scale, 3); // head

    Rng rng(config.seed);
    for (auto &conv : convs_)
        conv.initHe(rng);
    // Near-zero residual head: start at the bilinear baseline.
    for (auto &w : convs_.back().weights())
        w *= 0.01f;
}

Tensor
FsrcnnNet::forwardInternal(const Tensor &input, Activations *acts) const
{
    Tensor x = input;
    const size_t head = convs_.size() - 1;
    for (size_t i = 0; i < convs_.size(); ++i) {
        Tensor pre = convs_[i].forward(x);
        Tensor post = i == head ? pre : Relu::forward(pre);
        if (acts) {
            acts->pre.push_back(pre);
            acts->post.push_back(post);
        }
        x = std::move(post);
    }
    Tensor out = shuffle_.forward(x);
    out.add(bilinearUpscaleTensor(input, config_.scale));
    return out;
}

Tensor
FsrcnnNet::forward(const Tensor &input) const
{
    return forwardInternal(input, nullptr);
}

f64
FsrcnnNet::accumulateGradients(const Tensor &input,
                               const Tensor &target)
{
    Activations acts;
    Tensor prediction = forwardInternal(input, &acts);
    Tensor grad;
    f64 loss = mseLoss(prediction, target, grad);

    Tensor g = shuffle_.backward(grad);
    const size_t head = convs_.size() - 1;
    for (size_t i = convs_.size(); i-- > 0;) {
        if (i != head)
            g = Relu::backward(acts.pre[i], g);
        const Tensor &conv_input =
            i == 0 ? input : acts.post[i - 1];
        g = convs_[i].backward(conv_input, g);
    }
    return loss;
}

std::vector<ParamRef>
FsrcnnNet::params()
{
    std::vector<ParamRef> out;
    for (auto &conv : convs_)
        for (auto &p : conv.params())
            out.push_back(p);
    return out;
}

i64
FsrcnnNet::macs(int h, int w) const
{
    i64 total = 0;
    for (const auto &conv : convs_)
        total += conv.macs(h, w);
    return total;
}

void
FsrcnnNet::save(const std::string &path)
{
    saveParams(path, params());
}

bool
FsrcnnNet::load(const std::string &path)
{
    return loadParams(path, params());
}

} // namespace gssr
