# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("frame")
subdirs("metrics")
subdirs("render")
subdirs("codec")
subdirs("net")
subdirs("nn")
subdirs("sr")
subdirs("device")
subdirs("roi")
subdirs("pipeline")
