# Empty dependencies file for gssr_device.
# This may be replaced when dependencies are built.
