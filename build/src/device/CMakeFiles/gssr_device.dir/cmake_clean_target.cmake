file(REMOVE_RECURSE
  "libgssr_device.a"
)
