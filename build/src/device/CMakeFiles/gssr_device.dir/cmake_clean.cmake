file(REMOVE_RECURSE
  "CMakeFiles/gssr_device.dir/profiles.cc.o"
  "CMakeFiles/gssr_device.dir/profiles.cc.o.d"
  "libgssr_device.a"
  "libgssr_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
