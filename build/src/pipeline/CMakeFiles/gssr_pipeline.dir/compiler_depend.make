# Empty compiler generated dependencies file for gssr_pipeline.
# This may be replaced when dependencies are built.
