file(REMOVE_RECURSE
  "libgssr_pipeline.a"
)
