file(REMOVE_RECURSE
  "CMakeFiles/gssr_pipeline.dir/client.cc.o"
  "CMakeFiles/gssr_pipeline.dir/client.cc.o.d"
  "CMakeFiles/gssr_pipeline.dir/server.cc.o"
  "CMakeFiles/gssr_pipeline.dir/server.cc.o.d"
  "CMakeFiles/gssr_pipeline.dir/session.cc.o"
  "CMakeFiles/gssr_pipeline.dir/session.cc.o.d"
  "CMakeFiles/gssr_pipeline.dir/trace.cc.o"
  "CMakeFiles/gssr_pipeline.dir/trace.cc.o.d"
  "libgssr_pipeline.a"
  "libgssr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
