# Empty compiler generated dependencies file for gssr_codec.
# This may be replaced when dependencies are built.
