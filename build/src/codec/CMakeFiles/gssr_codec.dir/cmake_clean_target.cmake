file(REMOVE_RECURSE
  "libgssr_codec.a"
)
