file(REMOVE_RECURSE
  "CMakeFiles/gssr_codec.dir/codec.cc.o"
  "CMakeFiles/gssr_codec.dir/codec.cc.o.d"
  "CMakeFiles/gssr_codec.dir/dct.cc.o"
  "CMakeFiles/gssr_codec.dir/dct.cc.o.d"
  "CMakeFiles/gssr_codec.dir/motion.cc.o"
  "CMakeFiles/gssr_codec.dir/motion.cc.o.d"
  "CMakeFiles/gssr_codec.dir/plane_coder.cc.o"
  "CMakeFiles/gssr_codec.dir/plane_coder.cc.o.d"
  "CMakeFiles/gssr_codec.dir/rate_control.cc.o"
  "CMakeFiles/gssr_codec.dir/rate_control.cc.o.d"
  "libgssr_codec.a"
  "libgssr_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
