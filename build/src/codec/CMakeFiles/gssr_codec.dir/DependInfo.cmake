
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/codec.cc" "src/codec/CMakeFiles/gssr_codec.dir/codec.cc.o" "gcc" "src/codec/CMakeFiles/gssr_codec.dir/codec.cc.o.d"
  "/root/repo/src/codec/dct.cc" "src/codec/CMakeFiles/gssr_codec.dir/dct.cc.o" "gcc" "src/codec/CMakeFiles/gssr_codec.dir/dct.cc.o.d"
  "/root/repo/src/codec/motion.cc" "src/codec/CMakeFiles/gssr_codec.dir/motion.cc.o" "gcc" "src/codec/CMakeFiles/gssr_codec.dir/motion.cc.o.d"
  "/root/repo/src/codec/plane_coder.cc" "src/codec/CMakeFiles/gssr_codec.dir/plane_coder.cc.o" "gcc" "src/codec/CMakeFiles/gssr_codec.dir/plane_coder.cc.o.d"
  "/root/repo/src/codec/rate_control.cc" "src/codec/CMakeFiles/gssr_codec.dir/rate_control.cc.o" "gcc" "src/codec/CMakeFiles/gssr_codec.dir/rate_control.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frame/CMakeFiles/gssr_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
