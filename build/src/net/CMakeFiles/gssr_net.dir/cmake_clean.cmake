file(REMOVE_RECURSE
  "CMakeFiles/gssr_net.dir/channel.cc.o"
  "CMakeFiles/gssr_net.dir/channel.cc.o.d"
  "libgssr_net.a"
  "libgssr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
