# Empty dependencies file for gssr_net.
# This may be replaced when dependencies are built.
