file(REMOVE_RECURSE
  "libgssr_net.a"
)
