# Empty dependencies file for gssr_frame.
# This may be replaced when dependencies are built.
