file(REMOVE_RECURSE
  "CMakeFiles/gssr_frame.dir/downsample.cc.o"
  "CMakeFiles/gssr_frame.dir/downsample.cc.o.d"
  "CMakeFiles/gssr_frame.dir/image_io.cc.o"
  "CMakeFiles/gssr_frame.dir/image_io.cc.o.d"
  "CMakeFiles/gssr_frame.dir/yuv.cc.o"
  "CMakeFiles/gssr_frame.dir/yuv.cc.o.d"
  "libgssr_frame.a"
  "libgssr_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
