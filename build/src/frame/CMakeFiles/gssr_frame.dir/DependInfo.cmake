
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frame/downsample.cc" "src/frame/CMakeFiles/gssr_frame.dir/downsample.cc.o" "gcc" "src/frame/CMakeFiles/gssr_frame.dir/downsample.cc.o.d"
  "/root/repo/src/frame/image_io.cc" "src/frame/CMakeFiles/gssr_frame.dir/image_io.cc.o" "gcc" "src/frame/CMakeFiles/gssr_frame.dir/image_io.cc.o.d"
  "/root/repo/src/frame/yuv.cc" "src/frame/CMakeFiles/gssr_frame.dir/yuv.cc.o" "gcc" "src/frame/CMakeFiles/gssr_frame.dir/yuv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
