file(REMOVE_RECURSE
  "libgssr_frame.a"
)
