
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sr/edsr.cc" "src/sr/CMakeFiles/gssr_sr.dir/edsr.cc.o" "gcc" "src/sr/CMakeFiles/gssr_sr.dir/edsr.cc.o.d"
  "/root/repo/src/sr/fsrcnn.cc" "src/sr/CMakeFiles/gssr_sr.dir/fsrcnn.cc.o" "gcc" "src/sr/CMakeFiles/gssr_sr.dir/fsrcnn.cc.o.d"
  "/root/repo/src/sr/interpolate.cc" "src/sr/CMakeFiles/gssr_sr.dir/interpolate.cc.o" "gcc" "src/sr/CMakeFiles/gssr_sr.dir/interpolate.cc.o.d"
  "/root/repo/src/sr/srcnn.cc" "src/sr/CMakeFiles/gssr_sr.dir/srcnn.cc.o" "gcc" "src/sr/CMakeFiles/gssr_sr.dir/srcnn.cc.o.d"
  "/root/repo/src/sr/trainer.cc" "src/sr/CMakeFiles/gssr_sr.dir/trainer.cc.o" "gcc" "src/sr/CMakeFiles/gssr_sr.dir/trainer.cc.o.d"
  "/root/repo/src/sr/upscaler.cc" "src/sr/CMakeFiles/gssr_sr.dir/upscaler.cc.o" "gcc" "src/sr/CMakeFiles/gssr_sr.dir/upscaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/gssr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gssr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/gssr_render.dir/DependInfo.cmake"
  "/root/repo/build/src/frame/CMakeFiles/gssr_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
