file(REMOVE_RECURSE
  "libgssr_sr.a"
)
