# Empty compiler generated dependencies file for gssr_sr.
# This may be replaced when dependencies are built.
