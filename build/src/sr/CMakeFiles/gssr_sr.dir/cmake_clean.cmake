file(REMOVE_RECURSE
  "CMakeFiles/gssr_sr.dir/edsr.cc.o"
  "CMakeFiles/gssr_sr.dir/edsr.cc.o.d"
  "CMakeFiles/gssr_sr.dir/fsrcnn.cc.o"
  "CMakeFiles/gssr_sr.dir/fsrcnn.cc.o.d"
  "CMakeFiles/gssr_sr.dir/interpolate.cc.o"
  "CMakeFiles/gssr_sr.dir/interpolate.cc.o.d"
  "CMakeFiles/gssr_sr.dir/srcnn.cc.o"
  "CMakeFiles/gssr_sr.dir/srcnn.cc.o.d"
  "CMakeFiles/gssr_sr.dir/trainer.cc.o"
  "CMakeFiles/gssr_sr.dir/trainer.cc.o.d"
  "CMakeFiles/gssr_sr.dir/upscaler.cc.o"
  "CMakeFiles/gssr_sr.dir/upscaler.cc.o.d"
  "libgssr_sr.a"
  "libgssr_sr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_sr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
