file(REMOVE_RECURSE
  "libgssr_metrics.a"
)
