# Empty compiler generated dependencies file for gssr_metrics.
# This may be replaced when dependencies are built.
