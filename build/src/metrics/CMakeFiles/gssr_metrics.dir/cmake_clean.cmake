file(REMOVE_RECURSE
  "CMakeFiles/gssr_metrics.dir/perceptual.cc.o"
  "CMakeFiles/gssr_metrics.dir/perceptual.cc.o.d"
  "CMakeFiles/gssr_metrics.dir/psnr.cc.o"
  "CMakeFiles/gssr_metrics.dir/psnr.cc.o.d"
  "CMakeFiles/gssr_metrics.dir/ssim.cc.o"
  "CMakeFiles/gssr_metrics.dir/ssim.cc.o.d"
  "libgssr_metrics.a"
  "libgssr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
