# Empty compiler generated dependencies file for gssr_render.
# This may be replaced when dependencies are built.
