file(REMOVE_RECURSE
  "libgssr_render.a"
)
