file(REMOVE_RECURSE
  "CMakeFiles/gssr_render.dir/games.cc.o"
  "CMakeFiles/gssr_render.dir/games.cc.o.d"
  "CMakeFiles/gssr_render.dir/mesh.cc.o"
  "CMakeFiles/gssr_render.dir/mesh.cc.o.d"
  "CMakeFiles/gssr_render.dir/rasterizer.cc.o"
  "CMakeFiles/gssr_render.dir/rasterizer.cc.o.d"
  "CMakeFiles/gssr_render.dir/stereo.cc.o"
  "CMakeFiles/gssr_render.dir/stereo.cc.o.d"
  "libgssr_render.a"
  "libgssr_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
