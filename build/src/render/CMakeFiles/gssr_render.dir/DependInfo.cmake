
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/games.cc" "src/render/CMakeFiles/gssr_render.dir/games.cc.o" "gcc" "src/render/CMakeFiles/gssr_render.dir/games.cc.o.d"
  "/root/repo/src/render/mesh.cc" "src/render/CMakeFiles/gssr_render.dir/mesh.cc.o" "gcc" "src/render/CMakeFiles/gssr_render.dir/mesh.cc.o.d"
  "/root/repo/src/render/rasterizer.cc" "src/render/CMakeFiles/gssr_render.dir/rasterizer.cc.o" "gcc" "src/render/CMakeFiles/gssr_render.dir/rasterizer.cc.o.d"
  "/root/repo/src/render/stereo.cc" "src/render/CMakeFiles/gssr_render.dir/stereo.cc.o" "gcc" "src/render/CMakeFiles/gssr_render.dir/stereo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frame/CMakeFiles/gssr_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
