file(REMOVE_RECURSE
  "CMakeFiles/gssr_nn.dir/layers.cc.o"
  "CMakeFiles/gssr_nn.dir/layers.cc.o.d"
  "CMakeFiles/gssr_nn.dir/optimizer.cc.o"
  "CMakeFiles/gssr_nn.dir/optimizer.cc.o.d"
  "libgssr_nn.a"
  "libgssr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
