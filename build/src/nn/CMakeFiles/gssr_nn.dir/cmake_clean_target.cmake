file(REMOVE_RECURSE
  "libgssr_nn.a"
)
