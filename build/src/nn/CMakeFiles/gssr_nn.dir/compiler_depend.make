# Empty compiler generated dependencies file for gssr_nn.
# This may be replaced when dependencies are built.
