file(REMOVE_RECURSE
  "libgssr_roi.a"
)
