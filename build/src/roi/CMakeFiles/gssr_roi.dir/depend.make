# Empty dependencies file for gssr_roi.
# This may be replaced when dependencies are built.
