file(REMOVE_RECURSE
  "CMakeFiles/gssr_roi.dir/depth_processing.cc.o"
  "CMakeFiles/gssr_roi.dir/depth_processing.cc.o.d"
  "CMakeFiles/gssr_roi.dir/foveal.cc.o"
  "CMakeFiles/gssr_roi.dir/foveal.cc.o.d"
  "CMakeFiles/gssr_roi.dir/gaze.cc.o"
  "CMakeFiles/gssr_roi.dir/gaze.cc.o.d"
  "CMakeFiles/gssr_roi.dir/roi_detector.cc.o"
  "CMakeFiles/gssr_roi.dir/roi_detector.cc.o.d"
  "CMakeFiles/gssr_roi.dir/roi_search.cc.o"
  "CMakeFiles/gssr_roi.dir/roi_search.cc.o.d"
  "libgssr_roi.a"
  "libgssr_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
