file(REMOVE_RECURSE
  "CMakeFiles/gssr_common.dir/logging.cc.o"
  "CMakeFiles/gssr_common.dir/logging.cc.o.d"
  "CMakeFiles/gssr_common.dir/table.cc.o"
  "CMakeFiles/gssr_common.dir/table.cc.o.d"
  "libgssr_common.a"
  "libgssr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gssr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
