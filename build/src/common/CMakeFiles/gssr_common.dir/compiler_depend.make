# Empty compiler generated dependencies file for gssr_common.
# This may be replaced when dependencies are built.
