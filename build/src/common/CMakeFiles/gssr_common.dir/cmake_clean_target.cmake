file(REMOVE_RECURSE
  "libgssr_common.a"
)
