# Empty dependencies file for test_server_modes.
# This may be replaced when dependencies are built.
