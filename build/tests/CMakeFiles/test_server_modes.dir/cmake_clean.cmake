file(REMOVE_RECURSE
  "CMakeFiles/test_server_modes.dir/test_server_modes.cc.o"
  "CMakeFiles/test_server_modes.dir/test_server_modes.cc.o.d"
  "test_server_modes"
  "test_server_modes.pdb"
  "test_server_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
