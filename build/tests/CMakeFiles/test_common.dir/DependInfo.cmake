
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/test_common.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/gssr_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gssr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gssr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/roi/CMakeFiles/gssr_roi.dir/DependInfo.cmake"
  "/root/repo/build/src/sr/CMakeFiles/gssr_sr.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/gssr_render.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/gssr_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gssr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/frame/CMakeFiles/gssr_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/gssr_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gssr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
