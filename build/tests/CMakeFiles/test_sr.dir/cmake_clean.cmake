file(REMOVE_RECURSE
  "CMakeFiles/test_sr.dir/test_sr.cc.o"
  "CMakeFiles/test_sr.dir/test_sr.cc.o.d"
  "test_sr"
  "test_sr.pdb"
  "test_sr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
