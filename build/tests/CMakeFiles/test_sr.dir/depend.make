# Empty dependencies file for test_sr.
# This may be replaced when dependencies are built.
