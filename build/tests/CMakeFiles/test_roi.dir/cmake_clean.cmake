file(REMOVE_RECURSE
  "CMakeFiles/test_roi.dir/test_roi.cc.o"
  "CMakeFiles/test_roi.dir/test_roi.cc.o.d"
  "test_roi"
  "test_roi.pdb"
  "test_roi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
