# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_frame[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_render[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_sr[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_roi[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_server_modes[1]_include.cmake")
