file(REMOVE_RECURSE
  "CMakeFiles/roi_visualizer.dir/roi_visualizer.cpp.o"
  "CMakeFiles/roi_visualizer.dir/roi_visualizer.cpp.o.d"
  "roi_visualizer"
  "roi_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roi_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
