# Empty compiler generated dependencies file for roi_visualizer.
# This may be replaced when dependencies are built.
