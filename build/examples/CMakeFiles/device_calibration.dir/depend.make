# Empty dependencies file for device_calibration.
# This may be replaced when dependencies are built.
