file(REMOVE_RECURSE
  "CMakeFiles/device_calibration.dir/device_calibration.cpp.o"
  "CMakeFiles/device_calibration.dir/device_calibration.cpp.o.d"
  "device_calibration"
  "device_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
