file(REMOVE_RECURSE
  "CMakeFiles/train_sr_model.dir/train_sr_model.cpp.o"
  "CMakeFiles/train_sr_model.dir/train_sr_model.cpp.o.d"
  "train_sr_model"
  "train_sr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_sr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
