# Empty compiler generated dependencies file for train_sr_model.
# This may be replaced when dependencies are built.
