# Empty compiler generated dependencies file for bench_ext_rate_control.
# This may be replaced when dependencies are built.
