file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_characterization.dir/bench_fig3_characterization.cc.o"
  "CMakeFiles/bench_fig3_characterization.dir/bench_fig3_characterization.cc.o.d"
  "bench_fig3_characterization"
  "bench_fig3_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
