# Empty dependencies file for bench_fig10c_mtp_breakdown.
# This may be replaced when dependencies are built.
