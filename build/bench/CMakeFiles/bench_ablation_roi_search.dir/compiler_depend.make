# Empty compiler generated dependencies file for bench_ablation_roi_search.
# This may be replaced when dependencies are built.
