# Empty dependencies file for bench_ext_sr_architectures.
# This may be replaced when dependencies are built.
