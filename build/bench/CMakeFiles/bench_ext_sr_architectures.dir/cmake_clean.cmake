file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sr_architectures.dir/bench_ext_sr_architectures.cc.o"
  "CMakeFiles/bench_ext_sr_architectures.dir/bench_ext_sr_architectures.cc.o.d"
  "bench_ext_sr_architectures"
  "bench_ext_sr_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sr_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
