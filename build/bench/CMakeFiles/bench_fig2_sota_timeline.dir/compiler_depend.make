# Empty compiler generated dependencies file for bench_fig2_sota_timeline.
# This may be replaced when dependencies are built.
