file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cloud_vr.dir/bench_ext_cloud_vr.cc.o"
  "CMakeFiles/bench_ext_cloud_vr.dir/bench_ext_cloud_vr.cc.o.d"
  "bench_ext_cloud_vr"
  "bench_ext_cloud_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cloud_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
