# Empty compiler generated dependencies file for bench_ext_cloud_vr.
# This may be replaced when dependencies are built.
