file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_quality.dir/bench_fig14_quality.cc.o"
  "CMakeFiles/bench_fig14_quality.dir/bench_fig14_quality.cc.o.d"
  "bench_fig14_quality"
  "bench_fig14_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
