# Empty dependencies file for bench_fig14_quality.
# This may be replaced when dependencies are built.
