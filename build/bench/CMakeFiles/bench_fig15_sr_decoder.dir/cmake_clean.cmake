file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sr_decoder.dir/bench_fig15_sr_decoder.cc.o"
  "CMakeFiles/bench_fig15_sr_decoder.dir/bench_fig15_sr_decoder.cc.o.d"
  "bench_fig15_sr_decoder"
  "bench_fig15_sr_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sr_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
