# Empty compiler generated dependencies file for bench_fig15_sr_decoder.
# This may be replaced when dependencies are built.
