file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_roi_encoding.dir/bench_baseline_roi_encoding.cc.o"
  "CMakeFiles/bench_baseline_roi_encoding.dir/bench_baseline_roi_encoding.cc.o.d"
  "bench_baseline_roi_encoding"
  "bench_baseline_roi_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_roi_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
