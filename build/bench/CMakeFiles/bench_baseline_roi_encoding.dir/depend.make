# Empty dependencies file for bench_baseline_roi_encoding.
# This may be replaced when dependencies are built.
