# Empty dependencies file for bench_fig13_transient_psnr.
# This may be replaced when dependencies are built.
