file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_transient_psnr.dir/bench_fig13_transient_psnr.cc.o"
  "CMakeFiles/bench_fig13_transient_psnr.dir/bench_fig13_transient_psnr.cc.o.d"
  "bench_fig13_transient_psnr"
  "bench_fig13_transient_psnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_transient_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
