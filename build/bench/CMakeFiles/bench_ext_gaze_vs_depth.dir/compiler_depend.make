# Empty compiler generated dependencies file for bench_ext_gaze_vs_depth.
# This may be replaced when dependencies are built.
