file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gaze_vs_depth.dir/bench_ext_gaze_vs_depth.cc.o"
  "CMakeFiles/bench_ext_gaze_vs_depth.dir/bench_ext_gaze_vs_depth.cc.o.d"
  "bench_ext_gaze_vs_depth"
  "bench_ext_gaze_vs_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gaze_vs_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
