# Empty dependencies file for bench_motivation_network.
# This may be replaced when dependencies are built.
