file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_network.dir/bench_motivation_network.cc.o"
  "CMakeFiles/bench_motivation_network.dir/bench_motivation_network.cc.o.d"
  "bench_motivation_network"
  "bench_motivation_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
