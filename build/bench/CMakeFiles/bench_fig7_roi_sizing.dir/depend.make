# Empty dependencies file for bench_fig7_roi_sizing.
# This may be replaced when dependencies are built.
