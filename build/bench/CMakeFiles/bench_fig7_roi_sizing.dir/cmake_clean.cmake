file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_roi_sizing.dir/bench_fig7_roi_sizing.cc.o"
  "CMakeFiles/bench_fig7_roi_sizing.dir/bench_fig7_roi_sizing.cc.o.d"
  "bench_fig7_roi_sizing"
  "bench_fig7_roi_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_roi_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
