file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preprocess.dir/bench_ablation_preprocess.cc.o"
  "CMakeFiles/bench_ablation_preprocess.dir/bench_ablation_preprocess.cc.o.d"
  "bench_ablation_preprocess"
  "bench_ablation_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
