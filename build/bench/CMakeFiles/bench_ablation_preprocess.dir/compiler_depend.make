# Empty compiler generated dependencies file for bench_ablation_preprocess.
# This may be replaced when dependencies are built.
