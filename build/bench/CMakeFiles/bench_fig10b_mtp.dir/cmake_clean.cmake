file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_mtp.dir/bench_fig10b_mtp.cc.o"
  "CMakeFiles/bench_fig10b_mtp.dir/bench_fig10b_mtp.cc.o.d"
  "bench_fig10b_mtp"
  "bench_fig10b_mtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_mtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
