# Empty dependencies file for bench_fig10b_mtp.
# This may be replaced when dependencies are built.
