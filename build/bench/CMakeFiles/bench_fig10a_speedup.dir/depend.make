# Empty dependencies file for bench_fig10a_speedup.
# This may be replaced when dependencies are built.
