/**
 * @file
 * Unit tests for src/render: procedural meshes, the camera, the
 * z-buffer rasterizer (depth correctness, occlusion, LOD detail) and
 * the ten Table I game worlds plus the degenerate perspectives.
 */

#include <gtest/gtest.h>

#include "render/camera.hh"
#include "render/games.hh"
#include "render/mesh.hh"
#include "render/rasterizer.hh"

namespace gssr
{
namespace
{

TEST(MeshTest, BoxHasTwelveTriangles)
{
    Mesh box = makeBox({1, 1, 1}, {100, 0, 0}, Material::Noise);
    EXPECT_EQ(box.vertices.size(), 8u);
    EXPECT_EQ(box.triangles.size(), 12u);
}

TEST(MeshTest, BoxVerticesWithinExtents)
{
    Mesh box = makeBox({2, 4, 6}, {0, 0, 0}, Material::Flat);
    for (const auto &v : box.vertices) {
        EXPECT_LE(std::abs(v.x), 1.0 + 1e-9);
        EXPECT_LE(std::abs(v.y), 2.0 + 1e-9);
        EXPECT_LE(std::abs(v.z), 3.0 + 1e-9);
    }
}

TEST(MeshTest, GroundPlaneSubdivision)
{
    Mesh g = makeGroundPlane(10, 10, {0, 0, 0}, Material::Checker, 4);
    EXPECT_EQ(g.vertices.size(), 25u);
    EXPECT_EQ(g.triangles.size(), 32u); // 4x4 quads x 2
    for (const auto &v : g.vertices)
        EXPECT_DOUBLE_EQ(v.y, 0.0);
}

TEST(MeshTest, SphereVerticesOnRadius)
{
    Mesh s = makeSphere(2.0, 6, 8, {0, 0, 0}, Material::Noise);
    for (const auto &v : s.vertices)
        EXPECT_NEAR(v.length(), 2.0, 1e-9);
}

TEST(MeshTest, SphereTooCoarseThrows)
{
    EXPECT_THROW(makeSphere(1.0, 2, 8, {0, 0, 0}, Material::Flat),
                 PanicError);
}

TEST(MeshTest, AppendRebasesIndices)
{
    Mesh a = makeBox({1, 1, 1}, {0, 0, 0}, Material::Flat);
    Mesh b = makeBox({1, 1, 1}, {0, 0, 0}, Material::Flat);
    size_t verts = a.vertices.size();
    a.append(b);
    EXPECT_EQ(a.vertices.size(), 2 * verts);
    // Second box's triangles must reference the second vertex block.
    const Triangle &t = a.triangles[12];
    EXPECT_GE(t.v0, int(verts));
}

TEST(MeshTest, CompositeMeshesAreNonTrivial)
{
    Mesh tree = makeTree(5.0, {96, 70, 44}, {50, 120, 50});
    Mesh human = makeHumanoid(1.8, {150, 60, 50}, {224, 188, 150});
    EXPECT_GT(tree.triangles.size(), 20u);
    EXPECT_GT(human.triangles.size(), 40u);
}

TEST(CameraTest, ForwardDirection)
{
    Camera cam;
    cam.yaw = 0.0;
    cam.pitch = 0.0;
    Vec3 f = cam.forward();
    EXPECT_NEAR(f.x, 0.0, 1e-12);
    EXPECT_NEAR(f.z, -1.0, 1e-12);
}

TEST(CameraTest, ViewMatrixMovesWorldOppositeToCamera)
{
    Camera cam;
    cam.position = {0, 0, 10};
    f64 w = 0.0;
    Vec3 p = cam.viewMatrix().transformPoint({0, 0, 0}, w);
    EXPECT_NEAR(p.z, -10.0, 1e-12);
}

TEST(CameraTest, ProjectionMapsNearAndFarPlanes)
{
    Camera cam;
    cam.near_plane = 1.0;
    cam.far_plane = 100.0;
    Mat4 proj = cam.projectionMatrix(1.0);
    f64 w = 0.0;
    Vec3 near_pt = proj.transformPoint({0, 0, -1.0}, w);
    EXPECT_NEAR(near_pt.z / w, -1.0, 1e-9);
    Vec3 far_pt = proj.transformPoint({0, 0, -100.0}, w);
    EXPECT_NEAR(far_pt.z / w, 1.0, 1e-9);
}

/** One box in front of the camera on an empty background. */
Scene
singleBoxScene(f64 distance)
{
    Scene scene;
    scene.fog_density = 0.0;
    auto box = std::make_shared<Mesh>(
        makeBox({2, 2, 2}, {200, 50, 50}, Material::Flat));
    scene.add(box, Mat4::translate({0.0, 0.0, -distance}));
    scene.camera.position = {0, 0, 0};
    scene.camera.pitch = 0.0;
    return scene;
}

TEST(RasterizerTest, BackgroundIsSkyAndFarDepth)
{
    Scene scene;
    scene.fog_density = 0.0;
    RenderOutput out = renderScene(scene, {32, 32});
    // No geometry: all depth at the far plane.
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            EXPECT_FLOAT_EQ(out.depth.at(x, y), 1.0f);
    // Sky gradient: top row bluer (darker) than bottom row.
    EXPECT_LT(out.color.r().at(16, 0), out.color.r().at(16, 31));
}

TEST(RasterizerTest, BoxCoversCentreWithCorrectDepth)
{
    Scene scene = singleBoxScene(10.0);
    RenderOutput out = renderScene(scene, {64, 64});
    // Centre pixel hits the front face at distance 9.
    f64 expected =
        (9.0 - scene.camera.near_plane) /
        (scene.camera.far_plane - scene.camera.near_plane);
    EXPECT_NEAR(out.depth.at(32, 32), expected, 0.01);
    // Corner pixel is sky.
    EXPECT_FLOAT_EQ(out.depth.at(0, 0), 1.0f);
}

TEST(RasterizerTest, NearerBoxOccludesFartherBox)
{
    Scene scene = singleBoxScene(20.0);
    auto near_box = std::make_shared<Mesh>(
        makeBox({1, 1, 1}, {10, 200, 10}, Material::Flat));
    scene.add(near_box, Mat4::translate({0.0, 0.0, -5.0}));
    RenderOutput out = renderScene(scene, {64, 64});
    // Centre shows the near (green) box.
    EXPECT_GT(out.color.g().at(32, 32), out.color.r().at(32, 32));
    f64 near_depth = (4.5 - scene.camera.near_plane) /
                     (scene.camera.far_plane -
                      scene.camera.near_plane);
    EXPECT_NEAR(out.depth.at(32, 32), near_depth, 0.01);
}

TEST(RasterizerTest, GeometryBehindCameraIsClipped)
{
    Scene scene = singleBoxScene(-10.0); // behind the camera
    RenderOutput out = renderScene(scene, {32, 32});
    for (int y = 0; y < 32; ++y)
        for (int x = 0; x < 32; ++x)
            EXPECT_FLOAT_EQ(out.depth.at(x, y), 1.0f);
}

TEST(RasterizerTest, DeterministicAcrossRuns)
{
    Scene scene = singleBoxScene(8.0);
    RenderOutput a = renderScene(scene, {48, 48});
    RenderOutput b = renderScene(scene, {48, 48});
    EXPECT_EQ(a.color, b.color);
    EXPECT_EQ(a.depth.plane(), b.depth.plane());
}

/** Standard deviation of luma inside a rect — a texture-detail proxy. */
f64
lumaStddev(const ColorImage &img, Rect r)
{
    PlaneU8 luma = toGrayscale(img.crop(r));
    f64 mean = 0.0;
    for (u8 v : luma.data())
        mean += v;
    mean /= f64(luma.sampleCount());
    f64 var = 0.0;
    for (u8 v : luma.data())
        var += (v - mean) * (v - mean);
    return std::sqrt(var / f64(luma.sampleCount()));
}

TEST(RasterizerTest, DetailFadesWithDistanceLikeMipmapping)
{
    // The same screen-filling textured wall at 4 units vs. 60
    // units (scaled to cover the same pixels): the near render must
    // show more texture detail (Sec. III-B: depth controls the
    // rendered level of detail, like mipmapping).
    auto wall_at = [](f64 dist, f64 size) {
        Scene scene;
        scene.fog_density = 0.0;
        auto box = std::make_shared<Mesh>(makeBox(
            {size, size, 0.5}, {150, 150, 150}, Material::Noise));
        scene.add(box, Mat4::translate({0.0, 0.0, -dist}));
        return renderScene(scene, {96, 96});
    };
    // Both walls subtend the same visual angle (size / dist equal).
    RenderOutput near_render = wall_at(4.0, 6.0);
    RenderOutput far_render = wall_at(60.0, 90.0);
    // Probe well inside the wall.
    f64 near_detail = lumaStddev(near_render.color, {32, 32, 32, 32});
    f64 far_detail = lumaStddev(far_render.color, {32, 32, 32, 32});
    EXPECT_GT(near_detail, far_detail * 1.5);
}

TEST(GamesTest, TableOneListsTenGames)
{
    const auto &games = tableOneGames();
    ASSERT_EQ(games.size(), 10u);
    EXPECT_STREQ(games[0].short_name, "G1");
    EXPECT_STREQ(games[9].short_name, "G10");
    EXPECT_STREQ(games[2].title, "Witcher 3");
    EXPECT_STREQ(games[9].genre, "Racing");
}

TEST(GamesTest, GameInfoLookupCoversDegenerates)
{
    EXPECT_EQ(gameInfo(GameId::TopDownStrategy).perspective,
              ViewPerspective::TopDown);
    EXPECT_EQ(gameInfo(GameId::SideScroller).perspective,
              ViewPerspective::SideScroll);
    EXPECT_EQ(gameInfo(GameId::G1_MetroExodus).perspective,
              ViewPerspective::FirstPerson);
}

class GameWorldTest : public ::testing::TestWithParam<GameId>
{
};

TEST_P(GameWorldTest, RendersWithForegroundContent)
{
    GameWorld world(GetParam(), 5);
    Scene scene = world.sceneAt(0.5);
    EXPECT_GT(scene.triangleCount(), 100);
    RenderOutput out = renderScene(scene, {160, 96});
    // Some geometry is visible (not all far plane)...
    i64 covered = 0;
    f32 min_depth = 1.0f;
    for (f32 d : out.depth.plane().data()) {
        covered += d < 0.999f;
        min_depth = std::min(min_depth, d);
    }
    EXPECT_GT(covered, 160 * 96 / 10);
    // ... and something is close to the camera.
    EXPECT_LT(min_depth, 0.2f);
}

TEST_P(GameWorldTest, DeterministicForSameSeed)
{
    GameWorld a(GetParam(), 9);
    GameWorld b(GetParam(), 9);
    RenderOutput ra = renderScene(a.sceneAt(1.0), {80, 48});
    RenderOutput rb = renderScene(b.sceneAt(1.0), {80, 48});
    EXPECT_EQ(ra.color, rb.color);
}

TEST_P(GameWorldTest, CameraMovesOverTime)
{
    GameWorld world(GetParam(), 5);
    Scene early = world.sceneAt(0.0);
    Scene late = world.sceneAt(2.0);
    f64 moved =
        (late.camera.position - early.camera.position).length();
    EXPECT_GT(moved, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllTableOneGames, GameWorldTest,
    ::testing::Values(GameId::G1_MetroExodus, GameId::G2_FarCry5,
                      GameId::G3_Witcher3,
                      GameId::G4_RedDeadRedemption2,
                      GameId::G5_GrandTheftAutoV, GameId::G6_GodOfWar,
                      GameId::G7_TombRaider, GameId::G8_PlagueTale,
                      GameId::G9_FarmingSimulator,
                      GameId::G10_ForzaHorizon5),
    [](const ::testing::TestParamInfo<GameId> &info) {
        return gameInfo(info.param).short_name;
    });

TEST(GamesTest, TopDownHasNarrowDepthDistribution)
{
    // The degenerate perspective of Sec. VI: nearly uniform distance
    // from the virtual camera across the frame.
    GameWorld world(GameId::TopDownStrategy, 5);
    RenderOutput out = renderScene(world.sceneAt(0.5), {120, 72});
    f64 mean = 0.0;
    i64 n = 0;
    for (f32 d : out.depth.plane().data()) {
        if (d < 0.999f) { // ignore sky/borders
            mean += d;
            n += 1;
        }
    }
    ASSERT_GT(n, 0);
    mean /= f64(n);
    f64 var = 0.0;
    for (f32 d : out.depth.plane().data()) {
        if (d < 0.999f)
            var += (d - mean) * (d - mean);
    }
    f64 stddev = std::sqrt(var / f64(n));
    EXPECT_LT(stddev, 0.05);
}

} // namespace
} // namespace gssr
