/**
 * @file
 * Tests for the extension modules: codec rate control, the
 * camera-based gaze-tracking alternative (Sec. III-A), and the
 * Cloud VR stereo rendering extension (Sec. VI).
 */

#include <gtest/gtest.h>

#include "codec/rate_control.hh"
#include "pipeline/session.hh"
#include "render/games.hh"
#include "render/stereo.hh"
#include "roi/gaze.hh"
#include "roi/roi_detector.hh"

namespace gssr
{
namespace
{

// ---------------------------------------------------------------
// Rate control.
// ---------------------------------------------------------------

TEST(RateControlTest, HoldsQpInsideDeadZone)
{
    RateControlConfig config;
    config.target_mbps = 40.0;
    RateController rc(config, 14);
    // 40 Mbps at 60 FPS = ~83.3 KB/frame.
    for (int i = 0; i < 50; ++i)
        rc.observeBytes(83333);
    EXPECT_EQ(rc.qpForNextFrame(FrameType::Reference), 14);
}

TEST(RateControlTest, RaisesQpWhenOverTarget)
{
    RateControlConfig config;
    config.target_mbps = 20.0;
    RateController rc(config, 10);
    for (int i = 0; i < 50; ++i)
        rc.observeBytes(160000); // ~77 Mbps
    int qp = rc.qpForNextFrame(FrameType::Reference);
    EXPECT_GT(qp, 10);
    EXPECT_LE(qp, config.max_qp);
}

TEST(RateControlTest, LowersQpWhenUnderTarget)
{
    RateControlConfig config;
    config.target_mbps = 40.0;
    RateController rc(config, 20);
    for (int i = 0; i < 50; ++i)
        rc.observeBytes(20000); // ~9.6 Mbps
    EXPECT_LT(rc.qpForNextFrame(FrameType::Reference), 20);
}

TEST(RateControlTest, OnlyAdjustsAtReferenceFrames)
{
    RateControlConfig config;
    config.target_mbps = 10.0;
    RateController rc(config, 10);
    for (int i = 0; i < 50; ++i)
        rc.observeBytes(200000);
    EXPECT_EQ(rc.qpForNextFrame(FrameType::NonReference), 10);
    EXPECT_GT(rc.qpForNextFrame(FrameType::Reference), 10);
}

TEST(RateControlTest, QpStaysWithinBounds)
{
    RateControlConfig config;
    config.target_mbps = 1.0;
    config.max_qp = 30;
    RateController rc(config, 28);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 20; ++i)
            rc.observeBytes(500000);
        int qp = rc.qpForNextFrame(FrameType::Reference);
        EXPECT_LE(qp, 30);
    }
    EXPECT_EQ(rc.qp(), 30);
}

TEST(RateControlTest, ObservedBitrateConversion)
{
    RateControlConfig config;
    RateController rc(config, 14);
    rc.observeBytes(100000);
    // First observation is amortized (x0.6).
    EXPECT_NEAR(rc.observedMbps(), 100000 * 0.6 * 8 * 60 / 1e6, 0.1);
}

TEST(RateControlTest, ConvergesOnRealEncoder)
{
    // Closed loop against the actual codec: the controller must
    // bring the stream near the target bitrate.
    GameWorld world(GameId::G5_GrandTheftAutoV, 2);
    Size size{320, 180};
    CodecConfig codec;
    codec.gop_size = 6;
    codec.qp = 4; // deliberately way too fine
    GopEncoder encoder(codec, size);
    RateControlConfig rc_config;
    // Target ~2.5 Mbps at this small resolution.
    rc_config.target_mbps = 2.5;
    RateController rc(rc_config, codec.qp);

    f64 recent_bytes = 0.0;
    int recent_count = 0;
    for (int i = 0; i < 36; ++i) {
        encoder.setQp(rc.qpForNextFrame(encoder.nextFrameType()));
        EncodedFrame f = encoder.encode(
            renderScene(world.sceneAt(i / 60.0), size).color);
        rc.observe(f);
        if (i >= 24) {
            recent_bytes += f64(f.sizeBytes());
            recent_count += 1;
        }
    }
    f64 achieved =
        streamBitrateMbps(recent_bytes / recent_count, 60.0);
    EXPECT_NEAR(achieved, rc_config.target_mbps,
                rc_config.target_mbps * 0.5);
}

// ---------------------------------------------------------------
// Gaze model + camera tracker (Sec. III-A direct approach).
// ---------------------------------------------------------------

TEST(GazeModelTest, StaysInsideFrame)
{
    GazeModel model(GazeModelConfig{}, {320, 180});
    DepthMap depth; // empty: centre-biased fixations only
    for (int i = 0; i < 300; ++i) {
        Point g = model.nextGaze(depth);
        EXPECT_GE(g.x, 0);
        EXPECT_LT(g.x, 320);
        EXPECT_GE(g.y, 0);
        EXPECT_LT(g.y, 180);
    }
}

TEST(GazeModelTest, CentreBiased)
{
    GazeModel model(GazeModelConfig{}, {320, 180});
    DepthMap depth;
    f64 mean_x = 0.0, mean_y = 0.0;
    const int n = 600;
    for (int i = 0; i < n; ++i) {
        Point g = model.nextGaze(depth);
        mean_x += g.x;
        mean_y += g.y;
    }
    EXPECT_NEAR(mean_x / n, 160.0, 25.0);
    EXPECT_NEAR(mean_y / n, 90.0, 20.0);
}

TEST(GazeModelTest, TracksNearObjects)
{
    // A single very-near blob on the right side should attract
    // fixations when depth is provided.
    DepthMap depth(320, 180);
    for (int y = 60; y < 120; ++y)
        for (int x = 220; x < 280; ++x)
            depth.at(x, y) = 0.05f;
    GazeModelConfig config;
    config.object_tracking_probability = 1.0;
    GazeModel model(config, {320, 180});
    // Let a few fixations happen.
    Point g{0, 0};
    for (int i = 0; i < 120; ++i)
        g = model.nextGaze(depth);
    EXPECT_GT(g.x, 180);
    EXPECT_GT(g.y, 40);
    EXPECT_LT(g.y, 140);
}

TEST(GazeModelTest, DeterministicPerSeed)
{
    DepthMap depth;
    GazeModel a(GazeModelConfig{}, {320, 180});
    GazeModel b(GazeModelConfig{}, {320, 180});
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.nextGaze(depth), b.nextGaze(depth));
}

TEST(CameraTrackerTest, EstimateLagsBehindTruth)
{
    CameraTrackerConfig config;
    config.estimate_noise_frac = 0.0;
    config.latency_frames = 3;
    CameraGazeTracker tracker(config, {320, 180}, 7);
    // Step change in gaze: the estimate must take latency_frames to
    // catch up.
    for (int i = 0; i < 10; ++i)
        tracker.observe({100, 100});
    Point before = tracker.observe({250, 50});
    EXPECT_EQ(before.x, 100);
    tracker.observe({250, 50});
    tracker.observe({250, 50});
    Point after = tracker.observe({250, 50});
    EXPECT_EQ(after.x, 250);
}

TEST(CameraTrackerTest, RoiClampedInsideFrame)
{
    CameraTrackerConfig config;
    config.estimate_noise_frac = 0.0;
    config.latency_frames = 0;
    CameraGazeTracker tracker(config, {320, 180}, 7);
    for (int i = 0; i < 4; ++i)
        tracker.observe({2, 2}); // corner gaze
    Rect roi = tracker.roiFromEstimate({100, 100});
    EXPECT_TRUE((Rect{0, 0, 320, 180}.contains(roi)));
    EXPECT_EQ(roi.x, 0);
    EXPECT_EQ(roi.y, 0);
}

TEST(CameraTrackerTest, EnergyMatchesPaperMeasurement)
{
    CameraTrackerConfig config;
    CameraGazeTracker tracker(config, {320, 180}, 7);
    // +2.8 W over a 16.66 ms frame = ~46.7 mJ per frame.
    EXPECT_NEAR(tracker.energyMjPerFrame(1000.0 / 60.0), 46.7, 0.2);
}

// ---------------------------------------------------------------
// Stereo / Cloud VR (Sec. VI).
// ---------------------------------------------------------------

TEST(StereoTest, EyesAreIpdApart)
{
    Camera head;
    head.position = {1.0, 1.7, -5.0};
    head.yaw = 0.3;
    StereoConfig config;
    Camera left = eyeCamera(head, Eye::Left, config);
    Camera right = eyeCamera(head, Eye::Right, config);
    EXPECT_NEAR((right.position - left.position).length(),
                config.ipd, 1e-9);
    // Eye midpoint is the head position.
    Vec3 mid = (left.position + right.position) * 0.5;
    EXPECT_NEAR((mid - head.position).length(), 0.0, 1e-9);
}

TEST(StereoTest, RendersDisparity)
{
    // A near object must appear at different horizontal positions
    // in the two eyes (binocular disparity).
    Scene scene;
    scene.fog_density = 0.0;
    auto box = std::make_shared<Mesh>(
        makeBox({0.5, 0.5, 0.5}, {220, 40, 40}, Material::Flat));
    scene.add(box, Mat4::translate({0.0, 1.7, -2.0}));
    scene.camera.position = {0.0, 1.7, 0.0};
    StereoConfig config;
    config.ipd = 0.3; // exaggerated for a visible shift
    StereoRenderOutput out = renderStereo(scene, {128, 72}, config);

    auto redCentroidX = [](const ColorImage &img) {
        f64 sum = 0.0, weight = 0.0;
        for (int y = 0; y < img.height(); ++y) {
            for (int x = 0; x < img.width(); ++x) {
                // Red box under diffuse shading: the red channel
                // dominates even if dimmed.
                if (img.r().at(x, y) > 90 &&
                    img.r().at(x, y) > 2 * img.g().at(x, y)) {
                    sum += x;
                    weight += 1.0;
                }
            }
        }
        return weight > 0.0 ? sum / weight : -1.0;
    };
    f64 left_x = redCentroidX(out.left.color);
    f64 right_x = redCentroidX(out.right.color);
    ASSERT_GE(left_x, 0.0);
    ASSERT_GE(right_x, 0.0);
    // The left eye sees the object shifted right and vice versa.
    EXPECT_GT(left_x, right_x + 2.0);
}

TEST(StereoTest, PerEyeDepthSupportsRoiDetection)
{
    GameWorld world(GameId::G3_Witcher3, 4);
    Scene scene = world.sceneAt(0.8);
    StereoRenderOutput out = renderStereo(scene, {320, 180});
    RoiDetector detector(ServerProfile::gamingWorkstation());
    RoiDetection left = detector.detect(out.left.depth, {75, 75});
    RoiDetection right = detector.detect(out.right.depth, {75, 75});
    EXPECT_TRUE(left.depth_guided);
    EXPECT_TRUE(right.depth_guided);
    // The two eyes agree on the RoI up to disparity (a few pixels
    // at this IPD and scene depth).
    EXPECT_LT(std::abs(left.roi.x - right.roi.x), 40);
    EXPECT_LT(std::abs(left.roi.y - right.roi.y), 25);
}

// ---------------------------------------------------------------
// Rate-controlled end-to-end session.
// ---------------------------------------------------------------

TEST(RateControlledSessionTest, StreamsWithAdaptiveQp)
{
    SessionConfig config;
    config.game = GameId::G5_GrandTheftAutoV;
    config.frames = 8;
    config.lr_size = {192, 96};
    config.codec.gop_size = 4;
    config.codec.qp = 4;
    config.target_bitrate_mbps = 1.5;
    config.compute_pixels = false;
    SessionResult result = runSession(config);
    ASSERT_EQ(result.traces.size(), 8u);
    // The second GOP must be smaller than the first (qp raised).
    size_t gop1 = 0, gop2 = 0;
    for (int i = 0; i < 4; ++i)
        gop1 += result.traces[size_t(i)].encoded_bytes;
    for (int i = 4; i < 8; ++i)
        gop2 += result.traces[size_t(i)].encoded_bytes;
    EXPECT_LT(gop2, gop1);
}

} // namespace
} // namespace gssr
