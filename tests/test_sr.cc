/**
 * @file
 * Unit tests for src/sr: interpolation kernels, the EDSR cost-model
 * graph, the trainable CompactSrNet, the patch trainer, and the
 * Upscaler interface implementations.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "sr/edsr.hh"
#include "sr/fsrcnn.hh"
#include "sr/interpolate.hh"
#include "sr/srcnn.hh"
#include "sr/trainer.hh"
#include "sr/upscaler.hh"

namespace gssr
{
namespace
{

PlaneU8
gradientPlane(int w, int h)
{
    PlaneU8 p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = u8((x * 255) / (w - 1));
    return p;
}

class InterpKernelTest
    : public ::testing::TestWithParam<InterpKernel>
{
};

TEST_P(InterpKernelTest, ConstantPlaneStaysConstant)
{
    PlaneU8 p(8, 8, 77);
    PlaneU8 up = resizePlane(p, {16, 16}, GetParam());
    for (u8 v : up.data())
        EXPECT_NEAR(v, 77, 1);
}

TEST_P(InterpKernelTest, OutputSizeMatchesTarget)
{
    PlaneU8 p(10, 6);
    PlaneU8 up = resizePlane(p, {25, 13}, GetParam());
    EXPECT_EQ(up.size(), (Size{25, 13}));
}

TEST_P(InterpKernelTest, DownThenUpApproximatesSmoothContent)
{
    PlaneU8 p = gradientPlane(32, 32);
    PlaneU8 down = resizePlane(p, {16, 16}, GetParam());
    PlaneU8 up = resizePlane(down, {32, 32}, GetParam());
    EXPECT_GT(psnr(up, p), 35.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, InterpKernelTest,
    ::testing::Values(InterpKernel::Bilinear, InterpKernel::Bicubic,
                      InterpKernel::Lanczos3),
    [](const ::testing::TestParamInfo<InterpKernel> &info) {
        return interpKernelName(info.param);
    });

TEST(InterpolateTest, BilinearMidpointExact)
{
    PlaneU8 p(2, 1);
    p.at(0, 0) = 0;
    p.at(1, 0) = 200;
    // x2 upscale with half-pixel centres: outputs at src positions
    // -0.25, 0.25, 0.75, 1.25 -> values 0, 50, 150, 200.
    PlaneU8 up = resizePlane(p, {4, 1}, InterpKernel::Bilinear);
    EXPECT_EQ(up.at(0, 0), 0);
    EXPECT_EQ(up.at(1, 0), 50);
    EXPECT_EQ(up.at(2, 0), 150);
    EXPECT_EQ(up.at(3, 0), 200);
}

TEST(InterpolateTest, SharperKernelsPreserveEdgesBetter)
{
    // A high-contrast step: Lanczos should beat bilinear in PSNR
    // after a down-up cycle.
    PlaneU8 p(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            p.at(x, y) = (x / 4 + y / 4) % 2 ? 220 : 30;
    auto cycle = [&](InterpKernel k) {
        PlaneU8 down = resizePlane(p, {32, 32}, k);
        return psnr(resizePlane(down, {64, 64}, k), p);
    };
    EXPECT_GT(cycle(InterpKernel::Lanczos3),
              cycle(InterpKernel::Bilinear));
}

TEST(InterpolateTest, OpCountScalesWithTapsAndArea)
{
    i64 bilinear = resizeOpCount({100, 100}, InterpKernel::Bilinear);
    i64 lanczos = resizeOpCount({100, 100}, InterpKernel::Lanczos3);
    EXPECT_EQ(lanczos, bilinear * 3);
    EXPECT_EQ(resizeOpCount({200, 100}, InterpKernel::Bilinear),
              bilinear * 2);
}

TEST(InterpolateTest, ImageResizeAppliesToAllChannels)
{
    ColorImage img(4, 4);
    img.fill(10, 20, 30);
    ColorImage up = resizeImage(img, {8, 8});
    EXPECT_NEAR(up.r().at(4, 4), 10, 1);
    EXPECT_NEAR(up.g().at(4, 4), 20, 1);
    EXPECT_NEAR(up.b().at(4, 4), 30, 1);
}

TEST(EdsrTest, MacCountMatchesHandComputation)
{
    EdsrConfig config; // 16 blocks, 64 ch, x2, 3 in-ch
    EdsrNetwork net(config);
    // Per-LR-pixel MACs: head 3*64*9 + 32 body convs * 64*64*9 +
    // body-tail 64*64*9 + upsample 64*256*9 + tail at HR
    // (64*3*9 * 4 HR px per LR px).
    i64 per_px = 3 * 64 * 9 + 33 * 64 * 64 * 9 + 64 * 256 * 9 +
                 4 * 64 * 3 * 9;
    EXPECT_EQ(net.macs(1, 1), per_px);
    EXPECT_EQ(net.macs(10, 10), per_px * 100);
}

TEST(EdsrTest, FullFrame720pIsAboutOnePointThreeTeraMac)
{
    EdsrNetwork net(EdsrConfig{});
    f64 tmacs = f64(net.macs(720, 1280)) / 1e12;
    EXPECT_GT(tmacs, 1.1);
    EXPECT_LT(tmacs, 1.4);
}

TEST(EdsrTest, ForwardProducesUpscaledShape)
{
    EdsrConfig config;
    config.residual_blocks = 2; // small for execution speed
    config.channels = 8;
    EdsrNetwork net(config);
    Tensor in(3, 12, 16);
    Tensor out = net.forward(in);
    EXPECT_EQ(out.channels(), 3);
    EXPECT_EQ(out.height(), 24);
    EXPECT_EQ(out.width(), 32);
}

TEST(EdsrTest, ParameterCountScale2)
{
    EdsrNetwork net(EdsrConfig{});
    // EDSR-baseline x2 (3-ch) is ~1.37 M parameters.
    EXPECT_GT(net.parameterCount(), 1200000);
    EXPECT_LT(net.parameterCount(), 1600000);
}

TEST(CompactSrNetTest, OutputShapeIsDoubled)
{
    CompactSrNet net;
    Tensor in(1, 10, 14);
    Tensor out = net.forward(in);
    EXPECT_EQ(out.channels(), 1);
    EXPECT_EQ(out.height(), 20);
    EXPECT_EQ(out.width(), 28);
}

TEST(CompactSrNetTest, UntrainedOutputIsNearBilinear)
{
    // The global residual connection means a freshly initialized net
    // starts at (almost exactly) the bilinear baseline.
    CompactSrNet net;
    PlaneU8 lr = gradientPlane(24, 24);
    Tensor out = net.forward(Tensor::fromPlane(lr));
    PlaneU8 bilinear =
        resizePlane(lr, {48, 48}, InterpKernel::Bilinear);
    EXPECT_GT(psnr(out.toPlane(), bilinear), 38.0);
}

TEST(CompactSrNetTest, MacsScaleWithArea)
{
    CompactSrNet net;
    EXPECT_EQ(net.macs(20, 20), net.macs(10, 10) * 4);
}

TEST(CompactSrNetTest, GradientAccumulationReducesLoss)
{
    // A few steps on one pair must reduce the training loss.
    CompactSrNet net;
    Rng rng(8);
    PlaneU8 hr(32, 32);
    for (auto &v : hr.data())
        v = u8(rng.uniformInt(0, 255));
    PlaneU8 lr = resizePlane(hr, {16, 16}, InterpKernel::Bilinear);
    Tensor input = Tensor::fromPlane(lr);
    Tensor target = Tensor::fromPlane(hr);

    Adam::Config config;
    config.learning_rate = 1e-3;
    Adam adam(net.params(), config);
    f64 first = net.accumulateGradients(input, target);
    adam.step();
    f64 last = first;
    for (int i = 0; i < 30; ++i) {
        last = net.accumulateGradients(input, target);
        adam.step();
    }
    EXPECT_LT(last, first);
}

TEST(TrainerTest, RejectsMismatchedPairs)
{
    CompactSrNet net;
    SrTrainer trainer(net, TrainerConfig{});
    EXPECT_THROW(trainer.addPair(PlaneU8(64, 64), PlaneU8(64, 64)),
                 PanicError);
}

TEST(TrainerTest, ShortTrainingBeatssOrMatchesBilinear)
{
    // Tiny training run on synthetic texture; the residual design
    // guarantees we never fall meaningfully below bilinear.
    CompactSrNet net;
    TrainerConfig config;
    config.iterations = 120;
    config.patch_size = 24;
    config.batch_size = 2;
    SrTrainer trainer(net, config);

    Rng rng(9);
    for (int p = 0; p < 3; ++p) {
        PlaneU8 hr(96, 64);
        for (int y = 0; y < 64; ++y) {
            for (int x = 0; x < 96; ++x) {
                f64 v = 128 + 70 * std::sin(x * 0.4) *
                                  std::cos(y * 0.3) +
                        rng.uniform(-20.0, 20.0);
                hr.at(x, y) = toPixel(v);
            }
        }
        PlaneU8 lr =
            resizePlane(hr, {48, 32}, InterpKernel::Bilinear);
        trainer.addPair(std::move(lr), std::move(hr));
    }
    trainer.train();
    EXPECT_GE(trainer.evaluatePsnr(), trainer.bilinearPsnr() - 0.3);
}

TEST(FsrcnnTest, OutputShapeIsDoubled)
{
    FsrcnnNet net;
    Tensor in(1, 12, 18);
    Tensor out = net.forward(in);
    EXPECT_EQ(out.channels(), 1);
    EXPECT_EQ(out.height(), 24);
    EXPECT_EQ(out.width(), 36);
}

TEST(FsrcnnTest, UntrainedStartsNearBilinear)
{
    FsrcnnNet net;
    PlaneU8 lr = gradientPlane(24, 24);
    Tensor out = net.forward(Tensor::fromPlane(lr));
    PlaneU8 bilinear =
        resizePlane(lr, {48, 48}, InterpKernel::Bilinear);
    EXPECT_GT(psnr(out.toPlane(), bilinear), 38.0);
}

TEST(FsrcnnTest, UsesFarFewerMacsThanCompact)
{
    FsrcnnNet fsrcnn;
    CompactSrNet compact;
    EXPECT_LT(fsrcnn.macs(100, 100), compact.macs(100, 100));
}

TEST(FsrcnnTest, TrainingReducesLoss)
{
    FsrcnnNet net;
    Rng rng(12);
    PlaneU8 hr(32, 32);
    for (auto &v : hr.data())
        v = u8(rng.uniformInt(0, 255));
    PlaneU8 lr = resizePlane(hr, {16, 16}, InterpKernel::Bilinear);
    Tensor input = Tensor::fromPlane(lr);
    Tensor target = Tensor::fromPlane(hr);
    Adam::Config config;
    config.learning_rate = 1e-3;
    Adam adam(net.params(), config);
    f64 first = net.accumulateGradients(input, target);
    adam.step();
    f64 last = first;
    for (int i = 0; i < 30; ++i) {
        last = net.accumulateGradients(input, target);
        adam.step();
    }
    EXPECT_LT(last, first);
}

TEST(FsrcnnTest, SaveLoadRoundTrip)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "gssr_fsrcnn_weights.bin")
            .string();
    FsrcnnNet a;
    a.save(path);
    FsrcnnNet b;
    EXPECT_TRUE(b.load(path));
    Tensor in(1, 10, 10);
    in.fill(0.4f);
    Tensor oa = a.forward(in);
    Tensor ob = b.forward(in);
    for (size_t i = 0; i < oa.data().size(); ++i)
        EXPECT_FLOAT_EQ(oa.data()[i], ob.data()[i]);
    std::remove(path.c_str());
}

TEST(UpscalerTest, InterpUpscalerBasics)
{
    InterpUpscaler up(InterpKernel::Bilinear);
    EXPECT_EQ(up.name(), "bilinear");
    ColorImage img(8, 6);
    img.fill(50, 60, 70);
    ColorImage out = up.upscale(img, 2);
    EXPECT_EQ(out.size(), (Size{16, 12}));
    EXPECT_GT(up.macs({8, 6}, 2), 0);
}

TEST(UpscalerTest, DnnUpscalerProducesTargetSize)
{
    auto net = std::make_shared<const CompactSrNet>();
    DnnUpscaler up(net, 2);
    ColorImage img(16, 12);
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 16; ++x)
            img.setPixel(x, y, u8(x * 15), u8(y * 20), 100);
    EXPECT_EQ(up.upscale(img, 2).size(), (Size{32, 24}));
    EXPECT_EQ(up.upscale(img, 3).size(), (Size{48, 36}));
    EXPECT_EQ(up.upscale(img, 4).size(), (Size{64, 48}));
}

TEST(UpscalerTest, DnnMacsComeFromEdsrCostModel)
{
    auto net = std::make_shared<const CompactSrNet>();
    DnnUpscaler up(net, 2);
    EdsrNetwork edsr(EdsrConfig{});
    EXPECT_EQ(up.macs({300, 300}, 2), edsr.macs(300, 300));
}

TEST(UpscalerTest, DnnQualityBeatsBilinearInsideTrainedDomain)
{
    // With the shared trained net (cached in the build directory),
    // DNN SR must beat plain bilinear on renderer content. We train
    // a quick net here (separate cache path to stay hermetic).
    TrainerConfig config;
    config.iterations = 250;
    CompactSrNet trained = trainedSrNet("", config);
    auto net = std::make_shared<const CompactSrNet>(trained);

    // Evaluate on a held-out frame (different game/seed than the
    // trainer corpus). The LR frame is the anti-aliased downsample
    // of the HR render, as streamed by the server.
    GameWorld world(GameId::G7_TombRaider, 77);
    Scene scene = world.sceneAt(1.3);
    ColorImage hr = renderScene(scene, {320, 192}).color;
    ColorImage lr = boxDownsample(hr, 2);

    DnnUpscaler dnn(net, 2);
    InterpUpscaler bilinear(InterpKernel::Bilinear);
    f64 dnn_psnr = psnr(dnn.upscale(lr, 2), hr);
    f64 bilinear_psnr = psnr(bilinear.upscale(lr, 2), hr);
    EXPECT_GT(dnn_psnr, bilinear_psnr);
}

} // namespace
} // namespace gssr
