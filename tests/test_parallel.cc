/**
 * @file
 * Tests of the deterministic parallel execution layer
 * (common/parallel.*): pool lifecycle, exception propagation,
 * nested-call safety, ordered reductions, and bit-exact equality of
 * the parallelized kernels (Conv2d, SSIM, encoded bitstreams, motion
 * search) between 1 thread and an oversubscribed 8-thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "codec/motion.hh"
#include "codec/plane_coder.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "metrics/psnr.hh"
#include "metrics/ssim.hh"
#include "nn/layers.hh"
#include "roi/depth_processing.hh"
#include "roi/roi_search.hh"

namespace gssr
{
namespace
{

/** Restores the ambient pool size when a test exits. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int n) : saved_(parallelThreadCount())
    {
        setParallelThreadCount(n);
    }
    ~ScopedThreads() { setParallelThreadCount(saved_); }

  private:
    int saved_;
};

PlaneU8
randomPlaneU8(int w, int h, u64 seed)
{
    Rng rng(seed);
    PlaneU8 p(w, h);
    for (auto &v : p.data())
        v = u8(rng.uniformInt(0, 255));
    return p;
}

PlaneF32
randomPlaneF32(int w, int h, u64 seed)
{
    Rng rng(seed);
    PlaneF32 p(w, h);
    for (auto &v : p.data())
        v = f32(rng.uniform(0.0, 1.0));
    return p;
}

TEST(ParallelTest, PoolStartStopResize)
{
    ScopedThreads scope(4);
    EXPECT_EQ(parallelThreadCount(), 4);

    std::vector<int> out(1000, 0);
    parallelFor(0, 1000, 7, [&](i64 b, i64 e) {
        for (i64 i = b; i < e; ++i)
            out[size_t(i)] = int(i);
    });
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(out[size_t(i)], i);

    // Shrink to serial and back up; the pool must stay usable.
    setParallelThreadCount(1);
    EXPECT_EQ(parallelThreadCount(), 1);
    std::atomic<i64> sum{0};
    parallelFor(0, 100, 3, [&](i64 b, i64 e) { sum += e - b; });
    EXPECT_EQ(sum.load(), 100);

    setParallelThreadCount(8);
    EXPECT_EQ(parallelThreadCount(), 8);
    sum = 0;
    parallelFor(0, 100, 3, [&](i64 b, i64 e) { sum += e - b; });
    EXPECT_EQ(sum.load(), 100);
}

TEST(ParallelTest, RejectsBadThreadCountAndGrain)
{
    EXPECT_THROW(setParallelThreadCount(0), PanicError);
    EXPECT_THROW(
        parallelFor(0, 10, 0, [](i64, i64) {}), PanicError);
}

TEST(ParallelTest, EmptyRangeRunsNothing)
{
    ScopedThreads scope(4);
    int calls = 0;
    parallelFor(5, 5, 1, [&](i64, i64) { ++calls; });
    parallelFor(5, 2, 1, [&](i64, i64) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelTest, ExceptionPropagatesOut)
{
    ScopedThreads scope(4);
    EXPECT_THROW(
        parallelFor(0, 64, 1,
                    [&](i64 b, i64) {
                        if (b == 13)
                            fatal("chunk 13 failed");
                    }),
        FatalError);

    // The pool must remain fully usable after an exception.
    std::atomic<i64> sum{0};
    parallelFor(0, 64, 1, [&](i64 b, i64 e) { sum += e - b; });
    EXPECT_EQ(sum.load(), 64);
}

TEST(ParallelTest, LowestChunkExceptionWins)
{
    ScopedThreads scope(8);
    // Every chunk throws; the surfaced error must deterministically be
    // chunk 0's regardless of scheduling.
    for (int rep = 0; rep < 20; ++rep) {
        try {
            parallelFor(0, 32, 1, [&](i64 b, i64) {
                fatal("chunk ", b, " failed");
            });
            FAIL() << "expected FatalError";
        } catch (const FatalError &e) {
            EXPECT_STREQ(e.what(), "chunk 0 failed");
        }
    }
}

TEST(ParallelTest, NestedCallsRunInline)
{
    ScopedThreads scope(4);
    std::vector<int> out(16 * 16, 0);
    parallelFor(0, 16, 1, [&](i64 ob, i64 oe) {
        for (i64 o = ob; o < oe; ++o) {
            // Nested region: must execute inline without deadlock.
            parallelFor(0, 16, 1, [&](i64 ib, i64 ie) {
                for (i64 i = ib; i < ie; ++i)
                    out[size_t(o * 16 + i)] = int(o * 16 + i);
            });
        }
    });
    for (int i = 0; i < 16 * 16; ++i)
        EXPECT_EQ(out[size_t(i)], i);
}

TEST(ParallelTest, ReduceMatchesSerialExactly)
{
    // Chunked f64 sums must be bit-identical at every thread count
    // because the chunk layout and merge order are fixed.
    std::vector<f64> values(100000);
    Rng rng(7);
    for (auto &v : values)
        v = rng.uniform(-1.0, 1.0);

    auto sum_at = [&](int threads) {
        ScopedThreads scope(threads);
        return parallelReduce(
            0, i64(values.size()), 1024, 0.0,
            [&](i64 b, i64 e) {
                f64 acc = 0.0;
                for (i64 i = b; i < e; ++i)
                    acc += values[size_t(i)];
                return acc;
            },
            [](f64 a, f64 b) { return a + b; });
    };
    f64 serial = sum_at(1);
    EXPECT_EQ(serial, sum_at(2));
    EXPECT_EQ(serial, sum_at(5));
    EXPECT_EQ(serial, sum_at(8));
}

TEST(ParallelTest, Conv2dBitExactAcrossThreadCounts)
{
    Rng rng(21);
    Conv2d conv(6, 6, 3);
    conv.initHe(rng);
    Tensor input(6, 40, 40);
    for (size_t i = 0; i < input.data().size(); ++i)
        input.data()[i] = f32((i % 101) / 101.0);
    Tensor go(6, 40, 40);
    for (size_t i = 0; i < go.data().size(); ++i)
        go.data()[i] = f32((i % 13) - 6) / 6.0f;

    auto run = [&](int threads) {
        ScopedThreads scope(threads);
        Conv2d c = conv; // fresh gradient buffers per run
        Tensor out = c.forward(input);
        Tensor gin = c.backward(input, go);
        std::vector<ParamRef> params = c.params();
        return std::make_tuple(out.data(), gin.data(),
                               *params[0].grads, *params[1].grads);
    };

    auto serial = run(1);
    auto threaded = run(8);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(threaded));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(threaded));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(threaded));
    EXPECT_EQ(std::get<3>(serial), std::get<3>(threaded));
}

TEST(ParallelTest, SsimAndPsnrBitExactAcrossThreadCounts)
{
    PlaneU8 a = randomPlaneU8(160, 90, 33);
    PlaneU8 b = randomPlaneU8(160, 90, 34);
    f64 s1, s8, p1, p8;
    {
        ScopedThreads scope(1);
        s1 = ssim(a, b);
        p1 = psnr(a, b);
    }
    {
        ScopedThreads scope(8);
        s8 = ssim(a, b);
        p8 = psnr(a, b);
    }
    EXPECT_EQ(s1, s8); // exact, not NEAR: determinism guarantee
    EXPECT_EQ(p1, p8);
}

TEST(ParallelTest, EncodedBitstreamBitExactAcrossThreadCounts)
{
    PlaneF32 plane = randomPlaneF32(100, 60, 35);
    auto encode_at = [&](int threads) {
        ScopedThreads scope(threads);
        ByteWriter writer;
        PlaneF32 recon = encodePlane(plane, 6, writer);
        return std::make_pair(writer.take(), recon.data());
    };
    auto serial = encode_at(1);
    auto threaded = encode_at(8);
    EXPECT_EQ(serial.first, threaded.first);
    EXPECT_EQ(serial.second, threaded.second);

    // Decode must also reconstruct identically.
    auto decode_at = [&](const std::vector<u8> &bytes, int threads) {
        ScopedThreads scope(threads);
        ByteReader reader(bytes);
        return decodePlane({100, 60}, 6, reader).data();
    };
    EXPECT_EQ(decode_at(serial.first, 1), decode_at(serial.first, 8));
}

TEST(ParallelTest, MotionFieldBitExactAcrossThreadCounts)
{
    PlaneU8 ref = randomPlaneU8(128, 96, 41);
    PlaneU8 cur(128, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 128; ++x)
            cur.at(x, y) = ref.atClamped(x + 2, y - 1);

    auto run = [&](int threads) {
        ScopedThreads scope(threads);
        return estimateMotion(ref, cur, 16, 7).vectors;
    };
    EXPECT_EQ(run(1), run(8));
}

TEST(ParallelTest, RoiPipelineBitExactAcrossThreadCounts)
{
    PlaneF32 depth_plane(200, 120, 0.9f);
    for (int y = 40; y < 80; ++y)
        for (int x = 70; x < 130; ++x)
            depth_plane.at(x, y) = 0.2f;

    auto run = [&](int threads) {
        ScopedThreads scope(threads);
        DepthPreprocessResult pre =
            preprocessDepthMap(DepthMap(depth_plane), {});
        RoiSearchConfig config;
        config.window_width = 50;
        config.window_height = 50;
        config.mode = RoiSearchMode::TwoPhase;
        RoiSearchResult r = searchRoi(pre.processed, config);
        return std::make_tuple(pre.processed.data(), pre.layer_scores,
                               r.roi, r.score,
                               r.positions_evaluated);
    };
    auto serial = run(1);
    auto threaded = run(8);
    EXPECT_EQ(std::get<0>(serial), std::get<0>(threaded));
    EXPECT_EQ(std::get<1>(serial), std::get<1>(threaded));
    EXPECT_EQ(std::get<2>(serial), std::get<2>(threaded));
    EXPECT_EQ(std::get<3>(serial), std::get<3>(threaded));
    EXPECT_EQ(std::get<4>(serial), std::get<4>(threaded));
}

} // namespace
} // namespace gssr
