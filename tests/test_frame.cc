/**
 * @file
 * Unit tests for src/frame: planes, color images, YUV 4:2:0
 * conversion, depth maps and PPM/PGM I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "frame/depth_map.hh"
#include "frame/downsample.hh"
#include "frame/frame.hh"
#include "frame/image.hh"
#include "frame/image_io.hh"
#include "frame/plane.hh"
#include "frame/yuv.hh"

namespace gssr
{
namespace
{

TEST(PlaneTest, ConstructionAndFill)
{
    PlaneU8 p(4, 3, 7);
    EXPECT_EQ(p.width(), 4);
    EXPECT_EQ(p.height(), 3);
    EXPECT_EQ(p.sampleCount(), 12);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_EQ(p.at(x, y), 7);
    p.fill(9);
    EXPECT_EQ(p.at(2, 2), 9);
}

TEST(PlaneTest, OutOfBoundsAccessThrows)
{
    PlaneU8 p(4, 3);
    EXPECT_THROW(p.at(4, 0), PanicError);
    EXPECT_THROW(p.at(0, 3), PanicError);
    EXPECT_THROW(p.at(-1, 0), PanicError);
}

TEST(PlaneTest, ClampedAccess)
{
    PlaneU8 p(3, 3);
    p.at(0, 0) = 1;
    p.at(2, 2) = 9;
    EXPECT_EQ(p.atClamped(-5, -5), 1);
    EXPECT_EQ(p.atClamped(10, 10), 9);
}

TEST(PlaneTest, CropExtractsRegion)
{
    PlaneU8 p(6, 6);
    for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 6; ++x)
            p.at(x, y) = u8(y * 6 + x);
    PlaneU8 c = p.crop({2, 1, 3, 2});
    EXPECT_EQ(c.width(), 3);
    EXPECT_EQ(c.height(), 2);
    EXPECT_EQ(c.at(0, 0), p.at(2, 1));
    EXPECT_EQ(c.at(2, 1), p.at(4, 2));
}

TEST(PlaneTest, CropOutsideThrows)
{
    PlaneU8 p(6, 6);
    EXPECT_THROW(p.crop({4, 4, 4, 4}), PanicError);
}

TEST(PlaneTest, BlitRoundTripsWithCrop)
{
    PlaneU8 p(8, 8, 0);
    PlaneU8 patch(3, 3, 5);
    p.blit(patch, 2, 4);
    EXPECT_EQ(p.at(2, 4), 5);
    EXPECT_EQ(p.at(4, 6), 5);
    EXPECT_EQ(p.at(1, 4), 0);
    EXPECT_EQ(p.crop({2, 4, 3, 3}), patch);
}

TEST(PlaneTest, BlitOutsideThrows)
{
    PlaneU8 p(4, 4);
    PlaneU8 patch(3, 3);
    EXPECT_THROW(p.blit(patch, 2, 2), PanicError);
}

TEST(ColorImageTest, ChannelAccessAndPixels)
{
    ColorImage img(4, 4);
    img.setPixel(1, 2, 10, 20, 30);
    EXPECT_EQ(img.r().at(1, 2), 10);
    EXPECT_EQ(img.g().at(1, 2), 20);
    EXPECT_EQ(img.b().at(1, 2), 30);
    EXPECT_EQ(&img.channel(0), &img.r());
    EXPECT_EQ(&img.channel(2), &img.b());
    EXPECT_THROW(img.channel(3), PanicError);
}

TEST(ColorImageTest, CropAndBlit)
{
    ColorImage img(8, 8);
    img.fill(1, 2, 3);
    ColorImage patch(2, 2);
    patch.fill(9, 9, 9);
    img.blit(patch, 3, 3);
    ColorImage back = img.crop({3, 3, 2, 2});
    EXPECT_EQ(back, patch);
}

TEST(ColorImageTest, LumaOfKnownColors)
{
    EXPECT_EQ(lumaOf(255, 255, 255), 255);
    EXPECT_EQ(lumaOf(0, 0, 0), 0);
    // BT.601 green weight dominates.
    EXPECT_GT(lumaOf(0, 255, 0), lumaOf(255, 0, 0));
    EXPECT_GT(lumaOf(255, 0, 0), lumaOf(0, 0, 255));
}

TEST(ColorImageTest, GrayscaleConversion)
{
    ColorImage img(2, 1);
    img.setPixel(0, 0, 255, 255, 255);
    img.setPixel(1, 0, 0, 0, 0);
    PlaneU8 gray = toGrayscale(img);
    EXPECT_EQ(gray.at(0, 0), 255);
    EXPECT_EQ(gray.at(1, 0), 0);
}

TEST(YuvTest, RequiresEvenDimensions)
{
    EXPECT_THROW(Yuv420Image(5, 4), PanicError);
    EXPECT_THROW(Yuv420Image(4, 5), PanicError);
    EXPECT_NO_THROW(Yuv420Image(4, 4));
}

TEST(YuvTest, ChromaIsQuarterResolution)
{
    Yuv420Image yuv(8, 6);
    EXPECT_EQ(yuv.y.size(), (Size{8, 6}));
    EXPECT_EQ(yuv.u.size(), (Size{4, 3}));
    EXPECT_EQ(yuv.v.size(), (Size{4, 3}));
}

TEST(YuvTest, GrayRoundTripIsExactOnLuma)
{
    ColorImage img(8, 8);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            img.setPixel(x, y, u8(x * 30), u8(x * 30), u8(x * 30));
    ColorImage back = yuv420ToRgb(rgbToYuv420(img));
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            EXPECT_NEAR(back.r().at(x, y), img.r().at(x, y), 1);
            EXPECT_NEAR(back.g().at(x, y), img.g().at(x, y), 1);
            EXPECT_NEAR(back.b().at(x, y), img.b().at(x, y), 1);
        }
    }
}

TEST(YuvTest, ColorRoundTripCloseForSmoothContent)
{
    // Chroma subsampling loses detail; smooth gradients survive.
    ColorImage img(16, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            img.setPixel(x, y, u8(x * 15), u8(y * 15),
                         u8((x + y) * 7));
    ColorImage back = yuv420ToRgb(rgbToYuv420(img));
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            EXPECT_NEAR(back.r().at(x, y), img.r().at(x, y), 14);
            EXPECT_NEAR(back.g().at(x, y), img.g().at(x, y), 14);
            EXPECT_NEAR(back.b().at(x, y), img.b().at(x, y), 14);
        }
    }
}

TEST(DepthMapTest, DefaultsToFarPlane)
{
    DepthMap d(4, 4);
    EXPECT_FLOAT_EQ(d.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(d.nearness(0, 0), 0.0f);
}

TEST(DepthMapTest, NearnessInvertsDepth)
{
    DepthMap d(2, 2);
    d.at(0, 0) = 0.25f;
    EXPECT_FLOAT_EQ(d.nearness(0, 0), 0.75f);
}

TEST(DepthMapTest, GrayscaleUsesPaperConvention)
{
    // Near pixels are dark, far pixels are light (Fig. 5).
    DepthMap d(2, 1);
    d.at(0, 0) = 0.0f;
    d.at(1, 0) = 1.0f;
    PlaneU8 gray = d.toGrayscale();
    EXPECT_EQ(gray.at(0, 0), 0);
    EXPECT_EQ(gray.at(1, 0), 255);
}

TEST(DownsampleTest, AveragesBlocks)
{
    PlaneU8 p(4, 2);
    p.at(0, 0) = 0;
    p.at(1, 0) = 100;
    p.at(0, 1) = 50;
    p.at(1, 1) = 50;
    p.at(2, 0) = 200;
    p.at(3, 0) = 200;
    p.at(2, 1) = 200;
    p.at(3, 1) = 200;
    PlaneU8 d = boxDownsample(p, 2);
    EXPECT_EQ(d.size(), (Size{2, 1}));
    EXPECT_EQ(d.at(0, 0), 50);
    EXPECT_EQ(d.at(1, 0), 200);
}

TEST(DownsampleTest, FactorOneIsIdentity)
{
    PlaneU8 p(4, 4, 42);
    EXPECT_EQ(boxDownsample(p, 1), p);
}

TEST(DownsampleTest, IndivisibleDimensionsThrow)
{
    PlaneU8 p(5, 4);
    EXPECT_THROW(boxDownsample(p, 2), PanicError);
}

TEST(DownsampleTest, DepthMapAveragesDepth)
{
    DepthMap d(2, 2);
    d.at(0, 0) = 0.0f;
    d.at(1, 0) = 1.0f;
    d.at(0, 1) = 0.5f;
    d.at(1, 1) = 0.5f;
    DepthMap out = boxDownsample(d, 2);
    EXPECT_NEAR(out.at(0, 0), 0.5f, 1e-6);
}

TEST(FrameTest, TypeNames)
{
    EXPECT_STREQ(frameTypeName(FrameType::Reference), "reference");
    EXPECT_STREQ(frameTypeName(FrameType::NonReference),
                 "non-reference");
}

class ImageIoTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &name)
    {
        return (std::filesystem::temp_directory_path() /
                ("gssr_test_" + name))
            .string();
    }

    void
    TearDown() override
    {
        for (const auto &p : created_)
            std::remove(p.c_str());
    }

    std::string
    track(const std::string &p)
    {
        created_.push_back(p);
        return p;
    }

    std::vector<std::string> created_;
};

TEST_F(ImageIoTest, PpmRoundTrip)
{
    ColorImage img(5, 3);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 5; ++x)
            img.setPixel(x, y, u8(x * 50), u8(y * 80), u8(x + y));
    std::string path = track(tempPath("roundtrip.ppm"));
    writePpm(path, img);
    ColorImage back = readPpm(path);
    EXPECT_EQ(back, img);
}

TEST_F(ImageIoTest, PgmRoundTrip)
{
    PlaneU8 plane(7, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 7; ++x)
            plane.at(x, y) = u8(x * 30 + y);
    std::string path = track(tempPath("roundtrip.pgm"));
    writePgm(path, plane);
    EXPECT_EQ(readPgm(path), plane);
}

TEST_F(ImageIoTest, ReadMissingFileThrows)
{
    EXPECT_THROW(readPpm("/nonexistent/nope.ppm"), FatalError);
}

TEST_F(ImageIoTest, ReadWrongMagicThrows)
{
    std::string path = track(tempPath("bad.ppm"));
    {
        std::ofstream os(path);
        os << "P3\n1 1\n255\n0 0 0\n";
    }
    EXPECT_THROW(readPpm(path), FatalError);
}

} // namespace
} // namespace gssr
