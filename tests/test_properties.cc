/**
 * @file
 * Property-based test sweeps (parameterized gtest): invariants that
 * must hold across whole parameter grids rather than at single
 * points — codec round-trip error bounds across qp x size, resize
 * kernels across scales, RoI search optimality across strides and
 * window shapes, NPU model monotonicity, and end-to-end RoI
 * containment across games x window sizes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "codec/codec.hh"
#include "codec/rate_control.hh"
#include "common/rng.hh"
#include "device/profiles.hh"
#include "device/stress.hh"
#include "metrics/psnr.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"
#include "roi/roi_search.hh"
#include "sr/edsr.hh"
#include "sr/interpolate.hh"

namespace gssr
{
namespace
{

// ---------------------------------------------------------------
// Codec round trip across qp x frame size.
// ---------------------------------------------------------------

class CodecSweepTest
    : public ::testing::TestWithParam<std::tuple<int, Size>>
{
};

ColorImage
sweepFrame(Size size, int t)
{
    ColorImage img(size);
    for (int y = 0; y < size.height; ++y) {
        for (int x = 0; x < size.width; ++x) {
            f64 v = 128 + 70 * std::sin((x + 3 * t) * 0.21) *
                              std::cos(y * 0.18);
            img.setPixel(x, y, toPixel(v), toPixel(200 - v * 0.5),
                         toPixel(v * 0.7 + 40));
        }
    }
    return img;
}

TEST_P(CodecSweepTest, StreamRoundTripQualityScalesWithQp)
{
    auto [qp, size] = GetParam();
    CodecConfig config;
    config.qp = qp;
    config.gop_size = 3;
    GopEncoder encoder(config, size);
    FrameDecoder decoder(config, size);
    f64 min_psnr = 1e9;
    size_t total_bytes = 0;
    for (int i = 0; i < 5; ++i) {
        ColorImage frame = sweepFrame(size, i);
        EncodedFrame encoded = encoder.encode(frame);
        total_bytes += encoded.sizeBytes();
        min_psnr = std::min(
            min_psnr, psnr(yuv420ToRgb(decoder.decode(encoded)),
                           frame));
    }
    // Coarser qp still decodes recognizably; finer qp very well.
    f64 floor_db = qp <= 8 ? 33.0 : (qp <= 16 ? 29.0 : 25.0);
    EXPECT_GT(min_psnr, floor_db) << "qp=" << qp;
    // Compression actually happens (raw is 3 bytes/px).
    EXPECT_LT(total_bytes, size_t(size.area()) * 3 * 5 / 2);
}

INSTANTIATE_TEST_SUITE_P(
    QpBySize, CodecSweepTest,
    ::testing::Combine(::testing::Values(4, 8, 16, 28),
                       ::testing::Values(Size{64, 32}, Size{96, 96},
                                         Size{130, 70})),
    [](const auto &info) {
        return "qp" + std::to_string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param).width) + "x" +
               std::to_string(std::get<1>(info.param).height);
    });

// ---------------------------------------------------------------
// Resize kernels across scale factors.
// ---------------------------------------------------------------

class ResizeSweepTest
    : public ::testing::TestWithParam<std::tuple<InterpKernel, int>>
{
};

TEST_P(ResizeSweepTest, UpscaleThenDownscaleRecoversSmoothContent)
{
    auto [kernel, factor] = GetParam();
    PlaneU8 plane(40, 28);
    for (int y = 0; y < 28; ++y)
        for (int x = 0; x < 40; ++x)
            plane.at(x, y) =
                toPixel(128 + 90 * std::sin(x * 0.25) *
                                  std::cos(y * 0.22));
    Size up_size{40 * factor, 28 * factor};
    PlaneU8 up = resizePlane(plane, up_size, kernel);
    PlaneU8 back = resizePlane(up, plane.size(), kernel);
    EXPECT_GT(psnr(back, plane), 34.0);
}

TEST_P(ResizeSweepTest, ValueRangePreserved)
{
    auto [kernel, factor] = GetParam();
    Rng rng(5);
    PlaneU8 plane(24, 24);
    for (auto &v : plane.data())
        v = u8(rng.uniformInt(40, 200));
    PlaneU8 up = resizePlane(
        plane, {24 * factor, 24 * factor}, kernel);
    // Interpolation may overshoot (bicubic/lanczos ring) but only
    // within a bounded margin; bilinear not at all. Lanczos-3 rings
    // hardest on noise (up to ~45 levels on a 160-level step).
    int margin = kernel == InterpKernel::Bilinear
                     ? 0
                     : (kernel == InterpKernel::Bicubic ? 35 : 45);
    for (u8 v : up.data()) {
        EXPECT_GE(int(v), 40 - margin);
        EXPECT_LE(int(v), 200 + margin);
    }
}

INSTANTIATE_TEST_SUITE_P(
    KernelByFactor, ResizeSweepTest,
    ::testing::Combine(::testing::Values(InterpKernel::Bilinear,
                                         InterpKernel::Bicubic,
                                         InterpKernel::Lanczos3),
                       ::testing::Values(2, 3, 4)),
    [](const auto &info) {
        return std::string(
                   interpKernelName(std::get<0>(info.param))) +
               "_x" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------
// RoI search: two-phase near-optimality across stride settings and
// window shapes.
// ---------------------------------------------------------------

class RoiSearchSweepTest
    : public ::testing::TestWithParam<std::tuple<int, Size>>
{
};

TEST_P(RoiSearchSweepTest, TwoPhaseWithinTwoPercentOfExhaustive)
{
    auto [fine_stride, window] = GetParam();
    // Smooth importance landscape with two bumps.
    PlaneF32 map(180, 120);
    for (int y = 0; y < 120; ++y) {
        for (int x = 0; x < 180; ++x) {
            map.at(x, y) = f32(
                gaussian2d(x, y, 120, 40, 22) +
                0.7 * gaussian2d(x, y, 40, 80, 16));
        }
    }
    RoiSearchConfig config;
    config.window_width = window.width;
    config.window_height = window.height;
    config.fine_stride = fine_stride;
    RoiSearchResult two_phase = searchRoi(map, config);
    config.mode = RoiSearchMode::Exhaustive;
    RoiSearchResult exhaustive = searchRoi(map, config);
    EXPECT_GT(two_phase.score, exhaustive.score * 0.98);
    EXPECT_TRUE((Rect{0, 0, 180, 120}.contains(two_phase.roi)));
}

INSTANTIATE_TEST_SUITE_P(
    StrideByWindow, RoiSearchSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(Size{30, 30}, Size{48, 32},
                                         Size{20, 56})),
    [](const auto &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_w" +
               std::to_string(std::get<1>(info.param).width) + "x" +
               std::to_string(std::get<1>(info.param).height);
    });

// ---------------------------------------------------------------
// NPU model monotonicity across the size grid.
// ---------------------------------------------------------------

class NpuMonotonicityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(NpuMonotonicityTest, LatencyStrictlyIncreasesWithEdge)
{
    int edge = GetParam();
    static const EdsrNetwork net{EdsrConfig{}};
    for (const DeviceProfile &device :
         {DeviceProfile::galaxyTabS8(), DeviceProfile::pixel7Pro()}) {
        f64 smaller = device.npu.latencyMs(net.macs(edge, edge),
                                           i64(edge) * edge);
        int bigger_edge = edge + 20;
        f64 bigger = device.npu.latencyMs(
            net.macs(bigger_edge, bigger_edge),
            i64(bigger_edge) * bigger_edge);
        EXPECT_LT(smaller, bigger) << device.name;
        // And super-linear in area once the fixed invocation
        // overhead is removed (the memory-bound term).
        f64 area_ratio = f64(bigger_edge * bigger_edge) /
                         f64(edge * edge);
        f64 compute_ratio = (bigger - device.npu.overhead_ms) /
                            (smaller - device.npu.overhead_ms);
        EXPECT_GT(compute_ratio, area_ratio * 0.999) << device.name;
    }
}

INSTANTIATE_TEST_SUITE_P(EdgeGrid, NpuMonotonicityTest,
                         ::testing::Values(60, 120, 240, 480, 900));

// ---------------------------------------------------------------
// End-to-end RoI containment and determinism across games x
// window sizes (rendered depth maps).
// ---------------------------------------------------------------

class RoiContainmentTest
    : public ::testing::TestWithParam<std::tuple<GameId, int>>
{
};

TEST_P(RoiContainmentTest, DetectedRoiValidAndDeterministic)
{
    auto [game, edge] = GetParam();
    GameWorld world(game, 31);
    RenderOutput frame = renderScene(world.sceneAt(0.7), {256, 144});
    RoiDetector detector(ServerProfile::gamingWorkstation());
    RoiDetection a = detector.detect(frame.depth, {edge, edge});
    RoiDetection b = detector.detect(frame.depth, {edge, edge});
    EXPECT_EQ(a.roi, b.roi);
    EXPECT_TRUE((Rect{0, 0, 256, 144}.contains(a.roi)));
    EXPECT_EQ(a.roi.width, edge);
    EXPECT_EQ(a.roi.height, edge);
}

INSTANTIATE_TEST_SUITE_P(
    GamesByWindow, RoiContainmentTest,
    ::testing::Combine(::testing::Values(GameId::G1_MetroExodus,
                                         GameId::G4_RedDeadRedemption2,
                                         GameId::G8_PlagueTale,
                                         GameId::G10_ForzaHorizon5),
                       ::testing::Values(40, 64, 100, 144)),
    [](const auto &info) {
        return std::string(
                   gameInfo(std::get<0>(info.param)).short_name) +
               "_w" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------
// RNG statistical sweep across seeds.
// ---------------------------------------------------------------

class RngSeedSweepTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(RngSeedSweepTest, UniformMomentsHold)
{
    Rng rng(GetParam());
    f64 sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        f64 u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    f64 mean = sum / n;
    f64 var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.01);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweepTest,
                         ::testing::Values(1u, 42u, 31337u,
                                           0xdeadbeefu,
                                           0xffffffffffffffffull));

// ---------------------------------------------------------------
// AIMD rate-control invariants across adversarial signal patterns.
// ---------------------------------------------------------------

class AimdPropertyTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(AimdPropertyTest, TargetNeverLeavesConfiguredBounds)
{
    // Random interleavings of congestion and delivery signals at
    // random times must keep the target inside [min, max] at every
    // step — including pathological bursts of either signal.
    AimdConfig config;
    config.min_mbps = 2.0;
    config.max_mbps = 12.0;
    AimdController aimd(config, 6.0);

    Rng rng(GetParam());
    f64 now_ms = 0.0;
    for (int i = 0; i < 3000; ++i) {
        now_ms += rng.uniform() * 60.0;
        if (rng.uniform() < 0.3)
            aimd.onCongestion(now_ms);
        else
            aimd.onDelivered(now_ms);
        EXPECT_GE(aimd.targetMbps(), config.min_mbps);
        EXPECT_LE(aimd.targetMbps(), config.max_mbps);
    }
}

TEST_P(AimdPropertyTest, DecreaseIsMonotoneInDropSeverity)
{
    // With backoffs spaced past the refractory window, k+1 loss
    // episodes never leave the controller at a *higher* target than
    // k episodes do.
    AimdConfig config;
    const int max_drops = 1 + int(GetParam() % 12);
    auto finalTarget = [&](int drops) {
        AimdController aimd(config, 40.0);
        f64 now_ms = 0.0;
        for (int i = 0; i < drops; ++i) {
            EXPECT_TRUE(aimd.onCongestion(now_ms));
            now_ms += config.backoff_hold_ms + 1.0;
        }
        return aimd.targetMbps();
    };
    for (int k = 0; k < max_drops; ++k)
        EXPECT_LE(finalTarget(k + 1), finalTarget(k));
}

TEST_P(AimdPropertyTest, RefractoryHoldAppliesOneBackoffPerEpisode)
{
    // A burst of congestion signals inside one refractory window is
    // one loss episode: exactly one multiplicative decrease.
    AimdConfig config;
    AimdController aimd(config, 40.0);

    Rng rng(GetParam());
    f64 t0 = rng.uniform() * 1000.0;
    EXPECT_TRUE(aimd.onCongestion(t0));
    const f64 after_first = aimd.targetMbps();
    EXPECT_NEAR(after_first, 40.0 * config.decrease_factor, 1e-12);

    for (int i = 0; i < 10; ++i) {
        f64 jitter = rng.uniform() * (config.backoff_hold_ms - 1.0);
        EXPECT_FALSE(aimd.onCongestion(t0 + jitter));
    }
    EXPECT_EQ(aimd.backoffCount(), 1);
    EXPECT_EQ(aimd.targetMbps(), after_first);

    // Once the hold expires the next signal backs off again.
    EXPECT_TRUE(aimd.onCongestion(t0 + config.backoff_hold_ms));
    EXPECT_EQ(aimd.backoffCount(), 2);
    EXPECT_LT(aimd.targetMbps(), after_first);
}

TEST_P(AimdPropertyTest, DeliveryDuringBackoffHoldDoesNotReprobe)
{
    AimdConfig config;
    AimdController aimd(config, 40.0);
    aimd.onDelivered(0.0); // arm the delivery clock
    EXPECT_TRUE(aimd.onCongestion(10.0));
    const f64 held = aimd.targetMbps();

    // Deliveries inside the hold leave the target pinned down...
    Rng rng(GetParam());
    f64 now_ms = 10.0;
    while (now_ms < 10.0 + config.backoff_hold_ms - 2.0) {
        now_ms += rng.uniform() * 1.5;
        aimd.onDelivered(std::min(now_ms,
                                  10.0 + config.backoff_hold_ms - 1.0));
        EXPECT_EQ(aimd.targetMbps(), held);
    }
    // ...and additive increase resumes afterwards.
    aimd.onDelivered(10.0 + config.backoff_hold_ms + 50.0);
    EXPECT_GT(aimd.targetMbps(), held);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AimdPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 31337u,
                                           0xdeadbeefu));

// ---------------------------------------------------------------
// Thermal model invariants across sustained power levels.
// ---------------------------------------------------------------

class ThermalSweepTest : public ::testing::TestWithParam<f64>
{
  protected:
    static constexpr f64 kDtMs = 1000.0 / 60.0;
};

TEST_P(ThermalSweepTest, TemperatureMonotoneAndBoundedUnderLoad)
{
    const f64 watts = GetParam();
    ThermalParams params;
    ThermalModel model(params);
    f64 prev = model.temperatureC();
    for (int i = 0; i < 2000; ++i) {
        model.advance(kDtMs, watts * kDtMs);
        EXPECT_GE(model.temperatureC(), prev);
        prev = model.temperatureC();
    }
    // Never overshoots the RC steady state T_inf = ambient + P * R.
    EXPECT_LE(model.temperatureC(),
              params.ambient_c + watts * params.resistance_c_per_w +
                  1e-9);
}

TEST_P(ThermalSweepTest, CoolsMonotonicallyBackToAmbient)
{
    const f64 watts = GetParam();
    ThermalParams params;
    ThermalModel model(params);
    for (int i = 0; i < 2000; ++i)
        model.advance(kDtMs, watts * kDtMs);

    // Load removed: monotone decay, asymptoting at ambient (a 4000
    // frame tail is > 8 time constants, so even the 96 °C rise of
    // the 8 W case decays below the tolerance).
    f64 prev = model.temperatureC();
    for (int i = 0; i < 4000; ++i) {
        model.advance(kDtMs, 0.0);
        EXPECT_LE(model.temperatureC(), prev);
        EXPECT_GE(model.temperatureC(), params.ambient_c - 1e-9);
        prev = model.temperatureC();
    }
    EXPECT_NEAR(model.temperatureC(), params.ambient_c, 0.2);
}

TEST_P(ThermalSweepTest, ThrottleFactorsTrackTemperature)
{
    const f64 watts = GetParam();
    ThermalParams params;
    ThermalModel model(params);
    f64 prev_factor = 0.0;
    for (int i = 0; i < 2000; ++i) {
        model.advance(kDtMs, watts * kDtMs);
        // Factor >= 1, capped, and monotone in temperature — which
        // is monotone in time under sustained load.
        for (f64 factor :
             {model.npuFactor(), model.gpuFactor(), model.cpuFactor(),
              model.decoderFactor()}) {
            EXPECT_GE(factor, 1.0);
            EXPECT_LE(factor, 2.5);
        }
        EXPECT_GE(model.npuFactor(), prev_factor);
        prev_factor = model.npuFactor();
    }
    // Below the knee the factor is *exactly* 1 (bit-identity hinges
    // on this); past it, strictly above.
    if (model.temperatureC() <= params.npu.knee_c)
        EXPECT_EQ(model.npuFactor(), 1.0);
    else
        EXPECT_GT(model.npuFactor(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(SustainedWatts, ThermalSweepTest,
                         ::testing::Values(0.5, 2.0, 4.0, 8.0));

} // namespace
} // namespace gssr
