/**
 * @file
 * Multi-tenant fleet tests: scheduler determinism and policy
 * behavior (RR rotation vs. EDF start-deadline order, persistent
 * slot backlog, shedding), admission control's degradation ladder
 * (resolution steps, frame-rate halving, rejection), and the fleet
 * end-to-end properties — contention inflates MTP through the
 * ServerQueue stage, shed frames feed the AIMD backoff loop, and a
 * whole fleet run is bit-deterministic.
 */

#include <gtest/gtest.h>

#include "pipeline/fleet.hh"

namespace gssr
{
namespace
{

ServerCapacity
tinyCapacity(int slots, f64 shed_ms = 80.0)
{
    ServerCapacity capacity;
    capacity.gpu_slots = slots;
    capacity.shed_queue_ms = shed_ms;
    return capacity;
}

TEST(SchedulerTest, UncontendedJobsNeverQueue)
{
    FrameScheduler sched(SchedulePolicy::Edf, tinyCapacity(4));
    std::vector<SchedulerJob> jobs = {{0, 8.0}, {1, 6.0}, {2, 4.0}};
    auto out = sched.scheduleTick(0.0, jobs);
    ASSERT_EQ(out.size(), 3u);
    for (const ServerContention &c : out) {
        EXPECT_EQ(c.queue_ms, 0.0);
        EXPECT_FALSE(c.shed);
    }
}

TEST(SchedulerTest, EdfSchedulesCostliestFirst)
{
    // One slot, two jobs: the costlier job has the earlier start
    // deadline (slack - cost), so it goes first and the cheap job
    // absorbs the wait.
    FrameScheduler sched(SchedulePolicy::Edf, tinyCapacity(1));
    std::vector<SchedulerJob> jobs = {{0, 2.0}, {1, 9.0}};
    auto out = sched.scheduleTick(0.0, jobs);
    EXPECT_EQ(out[1].queue_ms, 0.0); // costly job starts immediately
    EXPECT_EQ(out[0].queue_ms, 9.0); // cheap job waits behind it
}

TEST(SchedulerTest, RoundRobinRotatesPriorityAcrossTicks)
{
    FrameScheduler sched(SchedulePolicy::RoundRobin,
                         tinyCapacity(1, 1e9));
    std::vector<SchedulerJob> jobs = {{0, 5.0}, {1, 5.0}};
    // Tick 0: session 0 first. Tick 1: rotation puts session 1 first.
    auto t0 = sched.scheduleTick(0.0, jobs);
    EXPECT_EQ(t0[0].queue_ms, 0.0);
    EXPECT_EQ(t0[1].queue_ms, 5.0);
    auto t1 = sched.scheduleTick(1000.0, jobs);
    EXPECT_EQ(t1[1].queue_ms, 0.0);
    EXPECT_EQ(t1[0].queue_ms, 5.0);
}

TEST(SchedulerTest, BacklogPersistsAcrossTicks)
{
    // 12 ms of work per 16.67 ms tick fits; 25 ms does not, and the
    // excess carries into the next tick as queueing delay.
    FrameScheduler sched(SchedulePolicy::Edf, tinyCapacity(1, 1e9));
    std::vector<SchedulerJob> jobs = {{0, 25.0}};
    auto t0 = sched.scheduleTick(0.0, jobs);
    EXPECT_EQ(t0[0].queue_ms, 0.0);
    auto t1 = sched.scheduleTick(1000.0 / 60.0, jobs);
    EXPECT_NEAR(t1[0].queue_ms, 25.0 - 1000.0 / 60.0, 1e-9);
    EXPECT_GT(sched.maxBacklogMs(), 0.0);
}

TEST(SchedulerTest, OverloadedQueueShedsInsteadOfStarving)
{
    FrameScheduler sched(SchedulePolicy::Edf, tinyCapacity(1, 10.0));
    std::vector<SchedulerJob> jobs = {{0, 8.0}, {1, 8.0}, {2, 8.0}};
    auto out = sched.scheduleTick(0.0, jobs);
    // 8 + 8 = 16 ms wait for the third job > 10 ms threshold.
    EXPECT_FALSE(out[0].shed);
    EXPECT_FALSE(out[1].shed);
    EXPECT_TRUE(out[2].shed);
    EXPECT_EQ(sched.framesShed(), 1);
}

TEST(FleetAdmissionTest, LadderDegradesResolutionThenFrameRate)
{
    // A one-slot workstation fits one 720p session (~8.4 ms of a
    // 15 ms budget) but not two; the second degrades down the
    // ladder, later ones get rejected.
    FleetServer fleet(ServerProfile::gamingWorkstation(),
                      SchedulePolicy::Edf);
    SessionConfig base = fleetMixSessionConfig(0); // 720p
    ASSERT_EQ(base.lr_size.width, 1280);

    AdmissionDecision first = fleet.admit(base);
    EXPECT_EQ(first.outcome, AdmissionOutcome::Admitted);
    EXPECT_EQ(first.config.lr_size.width, 1280);
    EXPECT_EQ(first.fps_divisor, 1);

    AdmissionDecision second = fleet.admit(base);
    EXPECT_EQ(second.outcome, AdmissionOutcome::Degraded);
    EXPECT_LT(second.config.lr_size.width, 1280);
    EXPECT_GE(second.config.lr_size.width, 480);
    EXPECT_EQ(second.config.lr_size.width % 4, 0);

    // Keep admitting until the ladder bottoms out in a rejection.
    AdmissionDecision last = second;
    for (int i = 0; i < 16 && last.outcome != AdmissionOutcome::Rejected;
         ++i)
        last = fleet.admit(base);
    EXPECT_EQ(last.outcome, AdmissionOutcome::Rejected);
    EXPECT_LE(fleet.committedCostMs(),
              fleet.capacity().budgetMsPerTick());
}

TEST(FleetAdmissionTest, DegradedSessionsHalveFrameRate)
{
    FleetServer fleet(ServerProfile::gamingWorkstation(),
                      SchedulePolicy::Edf);
    SessionConfig base = fleetMixSessionConfig(2); // 360p
    ASSERT_EQ(base.lr_size.width, 640);
    fleet.admit(base);
    fleet.admit(base); // two fit the ~15 ms workstation budget
    AdmissionDecision third = fleet.admit(base);
    // 640 * 3/4 = 480 is the only legal resolution step (the next
    // would go below the 480 floor), and it alone does not fit, so
    // the ladder falls through to the frame-rate divisor.
    ASSERT_EQ(third.outcome, AdmissionOutcome::Degraded);
    EXPECT_EQ(third.config.lr_size.width, 480);
    EXPECT_EQ(third.fps_divisor, 2);
}

TEST(FleetTest, ContentionInflatesMtpThroughServerQueueStage)
{
    // The same session alone on the rack vs. sharing it with 15
    // others. Under EDF the costliest (720p) sessions start first,
    // so the contention lands on a cheap 360p tenant: session 2 must
    // show ServerQueue latency and a strictly larger mean MTP than
    // when it runs alone.
    const int ticks = 60;
    FleetServer alone(ServerProfile::edgeRack(8), SchedulePolicy::Edf);
    alone.admit(fleetMixSessionConfig(2));
    FleetResult solo = alone.run(ticks);

    FleetServer shared(ServerProfile::edgeRack(8),
                       SchedulePolicy::Edf);
    for (int i = 0; i < 16; ++i)
        shared.admit(fleetMixSessionConfig(i));
    FleetResult contended = shared.run(ticks);

    ASSERT_EQ(contended.sessions.size(), 16u);
    EXPECT_EQ(solo.sessions[0].mean_queue_ms, 0.0);
    EXPECT_GT(contended.sessions[2].mean_queue_ms, 0.0);
    EXPECT_GT(contended.sessions[2].mean_mtp_ms,
              solo.sessions[0].mean_mtp_ms);
}

TEST(FleetTest, ShedFrameConcealsAndBacksOffBitrate)
{
    // The contention -> AIMD feedback loop, on one engine: a frame
    // the scheduler sheds is never transmitted, gets concealed at
    // the client, and fires a bitrate backoff.
    SessionConfig config = fleetMixSessionConfig(0);
    SessionEngine engine(config);
    const f64 period = 1000.0 / 60.0;

    engine.finishFrame(engine.beginFrame(0.0)); // clean frame
    ServerContention shed;
    shed.shed = true;
    engine.finishFrame(engine.beginFrame(period), shed);

    const SessionResult &result = engine.result();
    ASSERT_EQ(result.traces.size(), 2u);
    const FrameTrace &lost = result.traces[1];
    EXPECT_TRUE(lost.dropped);
    EXPECT_TRUE(lost.concealed);
    EXPECT_TRUE(lost.hasEvent(RecoveryEvent::ServerShed));
    EXPECT_TRUE(lost.hasEvent(RecoveryEvent::BitrateBackoff));
    EXPECT_EQ(lost.stageLatencyMs(Stage::Network), 0.0);
    EXPECT_EQ(result.resilience.frames_shed, 1);
    EXPECT_EQ(result.resilience.frames_dropped, 0); // not a net drop
    EXPECT_EQ(result.resilience.aimd_backoffs, 1);
}

TEST(FleetTest, OversubscribedFleetShedsAndBacksOff)
{
    // Disable admission headroom and pack a one-slot server far past
    // capacity with a tight shed threshold: frames get shed, the
    // clients conceal them, and the shed signal drives AIMD backoff.
    ServerCapacity capacity = tinyCapacity(1, 12.0);
    capacity.admission_utilization = 100.0; // admit everything
    FleetServer fleet(ServerProfile::gamingWorkstation(),
                      SchedulePolicy::Edf, capacity);
    for (int i = 0; i < 6; ++i)
        fleet.admit(fleetMixSessionConfig(i));
    FleetResult result = fleet.run(60);

    EXPECT_GT(result.frames_shed, 0);
    i64 shed = 0, concealed = 0, backoffs = 0;
    for (const FleetSessionStats &s : result.sessions) {
        shed += s.frames_shed;
        concealed += s.frames_concealed;
        backoffs += s.aimd_backoffs;
    }
    EXPECT_EQ(shed, result.frames_shed);
    EXPECT_GE(concealed, shed); // every shed frame was concealed
    EXPECT_GT(backoffs, 0);     // overload reached the rate control
}

TEST(FleetTest, RunIsDeterministic)
{
    auto once = [] {
        FleetServer fleet(ServerProfile::edgeRack(8),
                          SchedulePolicy::RoundRobin);
        for (int i = 0; i < 12; ++i)
            fleet.admit(fleetMixSessionConfig(i));
        return fleet.run(45);
    };
    FleetResult a = once();
    FleetResult b = once();
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.frames_shed, b.frames_shed);
    EXPECT_EQ(a.mtp_ms.count(), b.mtp_ms.count());
    EXPECT_EQ(a.mtp_ms.mean(), b.mtp_ms.mean());
    EXPECT_EQ(a.aggregate_bitrate_mbps, b.aggregate_bitrate_mbps);
}

TEST(FleetTest, PoliciesShareAdmissionButDifferInQueueing)
{
    auto run = [](SchedulePolicy policy) {
        FleetServer fleet(ServerProfile::edgeRack(8), policy);
        for (int i = 0; i < 16; ++i)
            fleet.admit(fleetMixSessionConfig(i));
        return fleet.run(45);
    };
    FleetResult rr = run(SchedulePolicy::RoundRobin);
    FleetResult edf = run(SchedulePolicy::Edf);

    // Admission is policy-independent...
    EXPECT_EQ(rr.admitted, edf.admitted);
    EXPECT_EQ(rr.degraded, edf.degraded);
    EXPECT_EQ(rr.committed_cost_ms, edf.committed_cost_ms);
    // ...but the queue-wait placement differs.
    EXPECT_NE(rr.fingerprint, edf.fingerprint);
}

} // namespace
} // namespace gssr
