/**
 * @file
 * The canonical golden sessions shared by the regression suites
 * (test_golden_trace.cc pins them; test_qoe.cc proves the QoE
 * control plane is a strict no-op when disabled against the same
 * checked-in fingerprints). One definition keeps the two suites
 * guarding the *same* bytes: a config drift here fails both.
 */

#ifndef GSSR_TESTS_GOLDEN_SESSIONS_HH
#define GSSR_TESTS_GOLDEN_SESSIONS_HH

#include "pipeline/session.hh"
#include "sr/trainer.hh"

namespace gssr
{
namespace golden
{

/** The quickly-trained SR net every golden session shares. */
inline std::shared_ptr<const CompactSrNet>
sharedNet()
{
    static std::shared_ptr<const CompactSrNet> net = [] {
        TrainerConfig config;
        config.iterations = 200;
        return std::make_shared<const CompactSrNet>(
            trainedSrNet("", config));
    }();
    return net;
}

/**
 * The canonical golden session: 30 frames of Witcher 3 at a reduced
 * pixel-computing resolution, lossy channel with a scripted burst,
 * NACK + AIMD resilience, PSNR sampled every 5th frame.
 */
inline SessionConfig
canonicalConfig(DesignKind design)
{
    SessionConfig config;
    config.game = GameId::G3_Witcher3;
    config.world_seed = 7;
    config.frames = 30;
    config.design = design;
    config.lr_size = {192, 96};
    config.codec.gop_size = 8;
    config.channel = ChannelConfig::wifi();
    config.channel_seed = 42;
    config.fault_scenario = FaultScenario::lossBurst(10, 2);
    config.target_bitrate_mbps = 6.0;
    config.resilience.nack = true;
    config.resilience.aimd = true;
    config.compute_pixels = true;
    config.sr_net = sharedNet();
    config.measure_quality = true;
    config.quality_stride = 5;
    return config;
}

/** One checked-in golden: design + pinned fingerprint + mean PSNR. */
struct Golden
{
    const char *name;
    DesignKind design;
    u64 fingerprint;
    f64 mean_psnr_db;
};

// Regenerate with the instruction in test_golden_trace.cc.
constexpr Golden kGoldens[] = {
    {"gamestreamsr", DesignKind::GameStreamSR, 0x1b3511947d4aa776ull,
     30.053332504097},
    {"nemo", DesignKind::Nemo, 0xec05ae16caf74dc0ull,
     29.068673926025},
};

} // namespace golden
} // namespace gssr

#endif // GSSR_TESTS_GOLDEN_SESSIONS_HH
