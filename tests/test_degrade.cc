/**
 * @file
 * Unit tests for the client-side device stress model
 * (device/stress.hh) and the frame-deadline degradation ladder
 * (pipeline/degrade.hh), plus their session integration: the
 * robustness acceptance criterion (a stressed ladder-enabled client
 * strictly reduces deadline misses vs. a ladder-disabled one), the
 * hold-tier frame-hold path, the precision-before-resolution tier
 * mapping, the bitrate control-loop feedback, and the DnnUpscaler
 * construction invariant.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "device/stress.hh"
#include "pipeline/client.hh"
#include "pipeline/degrade.hh"
#include "pipeline/session.hh"

namespace gssr
{
namespace
{

/** Short-hysteresis ladder so the tests don't need 48-frame runs. */
LadderConfig
quickLadder()
{
    LadderConfig config;
    config.down_after_misses = 2;
    config.up_after_clean = 4;
    return config;
}

// ---------------------------------------------------------------
// Ladder state machine.
// ---------------------------------------------------------------

TEST(LadderTest, StartsAtTierZeroWithExactIdentityScales)
{
    DegradationLadder ladder(LadderConfig{});
    EXPECT_EQ(ladder.tier(), 0);
    // Exact 1.0, not approximately: tier 0 must be a bit-identical
    // no-op on the encoder target and the RoI.
    EXPECT_EQ(ladder.bitrateScale(), 1.0);
    EXPECT_EQ(ladder.roiShrink(), 1.0);
}

TEST(LadderTest, StepsDownAfterConsecutiveMissesAndSaturates)
{
    DegradationLadder ladder(quickLadder());
    const f64 over = ladder.config().budget_ms * 2.0;

    EXPECT_EQ(ladder.onFrame(over, 100.0), LadderTransition::None);
    EXPECT_EQ(ladder.onFrame(over, 100.0), LadderTransition::StepDown);
    EXPECT_EQ(ladder.tier(), 1);

    // Keep missing: one tier per down_after_misses run, down to the
    // hold tier, where it saturates.
    for (int i = 0; i < 16; ++i)
        ladder.onFrame(over, 100.0);
    EXPECT_EQ(ladder.tier(), DegradationLadder::kTierHold);
    EXPECT_EQ(ladder.onFrame(over, 100.0), LadderTransition::None);
}

TEST(LadderTest, CleanFrameResetsTheMissRun)
{
    DegradationLadder ladder(quickLadder());
    const f64 over = ladder.config().budget_ms * 2.0;
    const f64 under = ladder.config().budget_ms * 0.5;

    EXPECT_EQ(ladder.onFrame(over, 100.0), LadderTransition::None);
    EXPECT_EQ(ladder.onFrame(under, 100.0), LadderTransition::None);
    EXPECT_EQ(ladder.onFrame(over, 100.0), LadderTransition::None);
    EXPECT_EQ(ladder.tier(), 0);
}

TEST(LadderTest, StepUpNeedsCleanRunMarginAndHeadroom)
{
    LadderConfig config = quickLadder();
    DegradationLadder ladder(config);
    const f64 over = config.budget_ms * 2.0;
    const f64 near_budget = config.budget_ms * 0.9; // above up_margin
    const f64 easy = config.budget_ms * 0.5;        // below up_margin

    ladder.onFrame(over, 100.0);
    ladder.onFrame(over, 100.0);
    ASSERT_EQ(ladder.tier(), 1);

    // Clean but close to the budget: never steps up.
    for (int i = 0; i < 3 * config.up_after_clean; ++i)
        EXPECT_EQ(ladder.onFrame(near_budget, 100.0),
                  LadderTransition::None);
    EXPECT_EQ(ladder.tier(), 1);

    // Comfortable margin but no thermal headroom: still pinned.
    for (int i = 0; i < 3 * config.up_after_clean; ++i)
        EXPECT_EQ(ladder.onFrame(easy, 0.0), LadderTransition::None);
    EXPECT_EQ(ladder.tier(), 1);

    // Margin + headroom: steps up after up_after_clean clean frames.
    LadderTransition last = LadderTransition::None;
    int clean = 0;
    while (last != LadderTransition::StepUp) {
        last = ladder.onFrame(easy, 100.0);
        clean += 1;
        ASSERT_LE(clean, config.up_after_clean);
    }
    EXPECT_EQ(ladder.tier(), 0);
}

TEST(LadderTest, DisabledLadderNeverLeavesTierZero)
{
    LadderConfig config = quickLadder();
    config.enabled = false;
    DegradationLadder ladder(config);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ladder.onFrame(config.budget_ms * 3.0, 100.0),
                  LadderTransition::None);
    EXPECT_EQ(ladder.tier(), 0);
}

TEST(LadderTest, BitrateScaleIsExactPowerOfStep)
{
    LadderConfig config = quickLadder();
    DegradationLadder ladder(config);
    const f64 over = config.budget_ms * 2.0;
    ladder.onFrame(over, 100.0);
    ladder.onFrame(over, 100.0);
    ladder.onFrame(over, 100.0);
    ladder.onFrame(over, 100.0);
    ASSERT_EQ(ladder.tier(), DegradationLadder::kTierRoiShrink);
    EXPECT_DOUBLE_EQ(ladder.bitrateScale(),
                     config.bitrate_step * config.bitrate_step);
    // The RoI shrink applies exactly at its own tier.
    EXPECT_EQ(ladder.roiShrink(), config.roi_shrink);
    ladder.onFrame(over, 100.0);
    ladder.onFrame(over, 100.0);
    ASSERT_EQ(ladder.tier(), DegradationLadder::kTierGpuOnly);
    EXPECT_EQ(ladder.roiShrink(), 1.0);
}

TEST(LadderTest, PrecisionTierTradesPrecisionBeforeResolution)
{
    // Tier 1 drops precision, not resolution: the first step down
    // from any wide base is the NAWQ hybrid schedule, and the RoI
    // stays untouched until kTierRoiShrink.
    EXPECT_EQ(degradedPrecision(Precision::Fp32, 0),
              Precision::Fp32);
    EXPECT_EQ(degradedPrecision(Precision::Fp32,
                                DegradationLadder::kTierPrecision),
              Precision::HybridInt8);
    EXPECT_EQ(degradedPrecision(Precision::Int16,
                                DegradationLadder::kTierPrecision),
              Precision::HybridInt8);
    EXPECT_EQ(degradedPrecision(Precision::HybridInt8,
                                DegradationLadder::kTierPrecision),
              Precision::Int8);
    EXPECT_EQ(degradedPrecision(Precision::Int8,
                                DegradationLadder::kTierPrecision),
              Precision::Int8);
    // Tiers 2+ run int8 everywhere regardless of the base.
    for (int tier = DegradationLadder::kTierRoiShrink;
         tier < DegradationLadder::kTierCount; ++tier) {
        EXPECT_EQ(degradedPrecision(Precision::Fp32, tier),
                  Precision::Int8)
            << tier;
    }
    // Tier 0 is a strict no-op for every base precision.
    for (Precision p :
         {Precision::Fp32, Precision::Int16, Precision::Int8,
          Precision::HybridInt8})
        EXPECT_EQ(degradedPrecision(p, 0), p);
}

TEST(LadderTest, RoiShrinkAppliesOnlyAtItsOwnTier)
{
    DegradationLadder ladder(quickLadder());
    const f64 over = ladder.config().budget_ms * 2.0;
    for (int tier = 0; tier < DegradationLadder::kTierCount; ++tier) {
        EXPECT_EQ(ladder.tier(), tier);
        if (tier == DegradationLadder::kTierRoiShrink)
            EXPECT_EQ(ladder.roiShrink(),
                      ladder.config().roi_shrink);
        else
            EXPECT_EQ(ladder.roiShrink(), 1.0);
        ladder.onFrame(over, 100.0);
        ladder.onFrame(over, 100.0);
    }
}

// ---------------------------------------------------------------
// Throttle curves + DVFS governor.
// ---------------------------------------------------------------

TEST(ThrottleCurveTest, ExactlyOneBelowKneeLinearAboveCapped)
{
    ThrottleCurve curve{45.0, 0.06, 2.5};
    EXPECT_EQ(curve.factorAt(20.0), 1.0);
    EXPECT_EQ(curve.factorAt(45.0), 1.0);
    EXPECT_DOUBLE_EQ(curve.factorAt(55.0), 1.0 + 0.06 * 10.0);
    EXPECT_DOUBLE_EQ(curve.factorAt(500.0), 2.5);
}

TEST(DvfsTest, GovernorStepsWithHysteresis)
{
    DvfsParams params; // enter 55/65, exit 3 below
    DvfsModel dvfs(params);
    EXPECT_EQ(dvfs.level(), 0);
    EXPECT_EQ(dvfs.scale(), 1.0);

    dvfs.update(56.0);
    EXPECT_EQ(dvfs.level(), 1);
    EXPECT_DOUBLE_EQ(dvfs.scale(), params.level1_scale);

    // Inside the hysteresis band: holds the level.
    dvfs.update(53.0);
    EXPECT_EQ(dvfs.level(), 1);
    dvfs.update(51.9);
    EXPECT_EQ(dvfs.level(), 0);

    dvfs.update(66.0);
    EXPECT_EQ(dvfs.level(), 2);
    dvfs.update(63.0);
    EXPECT_EQ(dvfs.level(), 2);
    dvfs.update(61.9);
    EXPECT_EQ(dvfs.level(), 1);
}

// ---------------------------------------------------------------
// Fault scenarios.
// ---------------------------------------------------------------

TEST(DeviceFaultScenarioTest, OverlappingWindowsCompose)
{
    DeviceFaultScenario scenario;
    scenario.events.push_back({0, 100, 1.5, 5.0, 0.2, 0.1, 4.0});
    scenario.events.push_back({50, 150, 1.0, 3.0, 0.5, 0.0, 2.0});

    DeviceFaultEvent at75 = scenario.effectAt(75);
    EXPECT_DOUBLE_EQ(at75.extra_power_w, 2.5);
    EXPECT_DOUBLE_EQ(at75.ambient_delta_c, 8.0);
    // Independent failure sources: 1 - (1-a)(1-b).
    EXPECT_DOUBLE_EQ(at75.npu_fail_prob, 1.0 - 0.8 * 0.5);
    EXPECT_DOUBLE_EQ(at75.decode_stall_ms, 6.0);

    DeviceFaultEvent at120 = scenario.effectAt(120);
    EXPECT_DOUBLE_EQ(at120.extra_power_w, 1.0);
    EXPECT_DOUBLE_EQ(at120.npu_fail_prob, 0.5);

    DeviceFaultEvent outside = scenario.effectAt(200);
    EXPECT_DOUBLE_EQ(outside.extra_power_w, 0.0);
    EXPECT_DOUBLE_EQ(outside.npu_fail_prob, 0.0);
}

TEST(DeviceFaultScenarioTest, NamedConstructorsCoverTheirWindows)
{
    DeviceFaultScenario soak =
        DeviceFaultScenario::thermalSoak(30, 60, 2.0);
    EXPECT_DOUBLE_EQ(soak.effectAt(30).extra_power_w, 2.0);
    EXPECT_DOUBLE_EQ(soak.effectAt(89).extra_power_w, 2.0);
    EXPECT_DOUBLE_EQ(soak.effectAt(90).extra_power_w, 0.0);
    EXPECT_DOUBLE_EQ(soak.effectAt(29).extra_power_w, 0.0);

    DeviceFaultScenario dropout =
        DeviceFaultScenario::npuDropout(10, 20, 0.4);
    EXPECT_DOUBLE_EQ(dropout.effectAt(15).npu_fail_prob, 0.4);
    EXPECT_DOUBLE_EQ(dropout.effectAt(30).npu_fail_prob, 0.0);

    EXPECT_TRUE(DeviceFaultScenario::none().empty());
    EXPECT_FALSE(DeviceFaultScenario::mixed(0, 50).empty());
}

// ---------------------------------------------------------------
// Stress model.
// ---------------------------------------------------------------

TEST(StressModelTest, FreshModelEmitsExactIdentityConditions)
{
    DeviceStressConfig config;
    config.enabled = true;
    DeviceStressModel model(config, DeviceFaultScenario::none(), 7);
    FrameConditions cond = model.beginFrame(0);
    EXPECT_EQ(cond.npu_scale, 1.0);
    EXPECT_EQ(cond.gpu_scale, 1.0);
    EXPECT_EQ(cond.cpu_scale, 1.0);
    EXPECT_EQ(cond.decoder_scale, 1.0);
    EXPECT_EQ(cond.decode_stall_ms, 0.0);
    EXPECT_FALSE(cond.npu_faulted);
    EXPECT_EQ(cond.tier, 0);
}

TEST(StressModelTest, ConditionStreamIsDeterministic)
{
    DeviceStressConfig config;
    config.enabled = true;
    DeviceFaultScenario scenario =
        DeviceFaultScenario::npuDropout(20, 100, 0.3);
    scenario.events.push_back({40, 120, 1.5, 0.0, 0.0, 0.4, 5.0});

    DeviceStressModel a(config, scenario, 42);
    DeviceStressModel b(config, scenario, 42);
    for (i64 frame = 0; frame < 200; ++frame) {
        FrameConditions ca = a.beginFrame(frame);
        FrameConditions cb = b.beginFrame(frame);
        EXPECT_EQ(ca.npu_faulted, cb.npu_faulted);
        EXPECT_EQ(ca.decode_stall_ms, cb.decode_stall_ms);
        EXPECT_EQ(ca.npu_scale, cb.npu_scale);
        EXPECT_EQ(ca.decoder_scale, cb.decoder_scale);
        a.endFrame(80.0, 1000.0 / 60.0);
        b.endFrame(80.0, 1000.0 / 60.0);
    }
    EXPECT_EQ(a.temperatureC(), b.temperatureC());
}

TEST(StressModelTest, FaultDrawsIndependentOfOtherWindows)
{
    // The fault stream inside a window must not shift when an
    // unrelated window is added elsewhere in the schedule — the
    // model draws the same number of uniforms every frame.
    DeviceStressConfig config;
    config.enabled = true;
    DeviceFaultScenario lone =
        DeviceFaultScenario::npuDropout(50, 50, 0.5);
    DeviceFaultScenario with_extra = lone;
    with_extra.events.push_back(
        {150, 200, 0.0, 0.0, 0.0, 0.8, 10.0});

    DeviceStressModel a(config, lone, 9);
    DeviceStressModel b(config, with_extra, 9);
    for (i64 frame = 0; frame < 100; ++frame) {
        FrameConditions ca = a.beginFrame(frame);
        FrameConditions cb = b.beginFrame(frame);
        EXPECT_EQ(ca.npu_faulted, cb.npu_faulted) << frame;
        a.endFrame(50.0, 1000.0 / 60.0);
        b.endFrame(50.0, 1000.0 / 60.0);
    }
}

TEST(StressModelTest, SustainedLoadThrottlesPastTheKnee)
{
    DeviceStressConfig config;
    config.enabled = true;
    DeviceStressModel model(config, DeviceFaultScenario::none(), 7);
    // ~8 W sustained: equilibrium far past every knee.
    for (i64 frame = 0; frame < 1200; ++frame) {
        model.beginFrame(frame);
        model.endFrame(8.0 * 1000.0 / 60.0, 1000.0 / 60.0);
    }
    EXPECT_GT(model.temperatureC(),
              config.thermal.npu.knee_c);
    FrameConditions cond = model.beginFrame(1200);
    EXPECT_GT(cond.npu_scale, 1.0);
    EXPECT_LT(model.headroomC(), 0.0);
    // The NPU throttles first and hardest.
    EXPECT_GE(cond.npu_scale, cond.decoder_scale);
}

TEST(StressModelTest, NpuFaultChargesTheConfiguredTimeout)
{
    DeviceStressConfig config;
    config.enabled = true;
    config.npu_timeout_ms = 31.0;
    DeviceStressModel model(
        config, DeviceFaultScenario::npuDropout(0, 400, 1.0), 7);
    FrameConditions cond = model.beginFrame(0);
    ASSERT_TRUE(cond.npu_faulted);
    EXPECT_DOUBLE_EQ(cond.npu_timeout_ms, 31.0);
}

// ---------------------------------------------------------------
// Client construction invariant (satellite: DnnUpscaler null net).
// ---------------------------------------------------------------

TEST(ClientInvariantTest, PixelClientWithoutSrNetFailsAtConstruction)
{
    ClientConfig config;
    config.lr_size = {64, 32};
    config.compute_pixels = true;
    config.sr_net = nullptr;
    EXPECT_THROW(GssrClient{config}, PanicError);
    EXPECT_THROW(NemoClient{config}, PanicError);
    EXPECT_THROW(SrDecoderClient{config}, PanicError);
}

TEST(ClientInvariantTest, AccountingClientNeedsNoSrNet)
{
    ClientConfig config;
    config.lr_size = {64, 32};
    config.compute_pixels = false;
    config.sr_net = nullptr;
    EXPECT_NO_THROW(GssrClient{config});
}

// ---------------------------------------------------------------
// Session integration.
// ---------------------------------------------------------------

SessionConfig
stressedSessionConfig(bool ladder_on)
{
    SessionConfig config;
    config.lr_size = {1280, 720};
    config.scale_factor = 2;
    config.frames = 150;
    config.codec.gop_size = 60;
    config.compute_pixels = false;
    config.server_proxy_size = {256, 144};
    config.device_stress.enabled = true;
    config.device_faults =
        DeviceFaultScenario::thermalSoak(0, 150, 2.5);
    config.ladder.enabled = ladder_on;
    return config;
}

TEST(DegradationSessionTest, LadderStrictlyReducesDeadlineMisses)
{
    SessionResult with = runSession(stressedSessionConfig(true));
    SessionResult without = runSession(stressedSessionConfig(false));

    // The acceptance criterion: under identical injected stress the
    // ladder-enabled client's deadline-miss count is strictly below
    // the ladder-disabled client's.
    EXPECT_LT(with.degradation.deadline_misses,
              without.degradation.deadline_misses);
    EXPECT_GT(without.degradation.deadline_misses, 0);

    // It got there by actually degrading...
    EXPECT_GT(with.degradation.ladder_step_downs, 0);
    EXPECT_GT(with.degradation.tier_frames[1], 0);
    // ...which also sheds heat.
    EXPECT_LT(with.degradation.peak_temperature_c,
              without.degradation.peak_temperature_c);
    // The disabled ladder never moves.
    EXPECT_EQ(without.degradation.ladder_step_downs, 0);
    EXPECT_EQ(without.degradation.final_tier, 0);
}

TEST(DegradationSessionTest, StressedSessionReplaysBitIdentically)
{
    u64 a = sessionFingerprint(runSession(stressedSessionConfig(true)));
    u64 b = sessionFingerprint(runSession(stressedSessionConfig(true)));
    EXPECT_EQ(a, b);
}

TEST(DegradationSessionTest, DegradedClientRequestsLowerBitrate)
{
    // Inside the encoder's controllable range a throttled client's
    // bitrate_step^tier retarget must show up in the stream bytes.
    SessionConfig on = stressedSessionConfig(true);
    SessionConfig off = stressedSessionConfig(false);
    on.target_bitrate_mbps = 60.0;
    off.target_bitrate_mbps = 60.0;
    SessionResult with = runSession(on);
    SessionResult without = runSession(off);

    auto totalBytes = [](const SessionResult &r) {
        size_t bytes = 0;
        for (const FrameTrace &t : r.traces)
            bytes += t.encoded_bytes;
        return bytes;
    };
    ASSERT_GT(with.degradation.tier_frames[1], 0);
    EXPECT_LT(totalBytes(with), totalBytes(without));
}

TEST(DegradationSessionTest, HoldTierSubstitutesAndKeepsDecoding)
{
    // Permanent severe memory pressure: the decode stage alone blows
    // the budget, so no tier can recover and the ladder must ride
    // all the way down to hold-tier frame holds.
    SessionConfig config = stressedSessionConfig(true);
    config.device_faults =
        DeviceFaultScenario::memoryPressure(0, 150, 1.0, 25.0);
    SessionResult result = runSession(config);

    const DegradationStats &deg = result.degradation;
    EXPECT_GT(deg.frames_held, 0);
    EXPECT_GT(deg.tier_frames[DegradationLadder::kTierHold], 0);
    EXPECT_EQ(deg.final_tier, DegradationLadder::kTierHold);

    // Held frames are marked concealed (the display repeated the
    // last good output), carry the FrameHeld event, and still paid
    // for the decode — the reference chain must stay warm.
    i64 held_seen = 0;
    for (const FrameTrace &t : result.traces) {
        if (!t.hasEvent(RecoveryEvent::FrameHeld))
            continue;
        held_seen += 1;
        EXPECT_TRUE(t.concealed);
        EXPECT_FALSE(t.dropped);
        EXPECT_GT(t.stageLatencyMs(Stage::Decode), 0.0);
    }
    EXPECT_EQ(held_seen, deg.frames_held);
    // A ladder hold is not a loss: the resilience path must not
    // count it as concealment.
    EXPECT_EQ(result.resilience.frames_concealed +
                  result.degradation.frames_held,
              i64(std::count_if(result.traces.begin(),
                                result.traces.end(),
                                [](const FrameTrace &t) {
                                    return t.concealed;
                                })));
}

TEST(DegradationSessionTest, LadderIsNoOpWithoutStress)
{
    // Ladder enabled (the default) vs. disabled on a fault-free
    // session: bit-identical — the tier-0 ladder only observes.
    SessionConfig config;
    config.lr_size = {192, 96};
    config.frames = 30;
    config.codec.gop_size = 8;
    config.compute_pixels = false;
    config.ladder.enabled = true;
    u64 with = sessionFingerprint(runSession(config));
    config.ladder.enabled = false;
    u64 without = sessionFingerprint(runSession(config));
    EXPECT_EQ(with, without);
}

TEST(DegradationSessionTest, BaselineDesignsHonorFaultsIgnoreLadder)
{
    // NEMO under NPU dropout: the retry semantics charge timeout +
    // invocation on reference frames, and the ladder stays parked at
    // tier 0 (its tiers are defined for the hybrid client).
    SessionConfig config = stressedSessionConfig(true);
    config.design = DesignKind::Nemo;
    config.device_faults =
        DeviceFaultScenario::npuDropout(0, 150, 1.0);
    SessionResult result = runSession(config);
    EXPECT_GT(result.degradation.npu_faults, 0);
    EXPECT_EQ(result.degradation.ladder_step_downs, 0);
    EXPECT_EQ(result.degradation.frames_held, 0);
    EXPECT_EQ(result.degradation.final_tier, 0);
}

} // namespace
} // namespace gssr
