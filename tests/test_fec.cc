/**
 * @file
 * Unit tests for the wire format and FEC layer (src/net/fec.hh,
 * src/net/packetizer.hh): GF(256) algebra, Reed–Solomon erasure
 * recovery properties, shard geometry, delivery evaluation, byte-level
 * packetize/reassemble round trips, and malformed-packet robustness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "net/fec.hh"
#include "net/packetizer.hh"

namespace gssr
{
namespace
{

std::vector<u8>
randomBytes(size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u8> out(n);
    for (auto &b : out)
        b = u8(rng.uniformInt(0, 255));
    return out;
}

std::vector<std::vector<u8>>
randomShards(int k, size_t len, u64 seed)
{
    std::vector<std::vector<u8>> shards;
    for (int i = 0; i < k; ++i)
        shards.push_back(randomBytes(len, seed + u64(i) * 1000003));
    return shards;
}

TEST(GfTest, MulDivInvRoundTrip)
{
    for (int a = 1; a < 256; ++a) {
        EXPECT_EQ(gfMul(u8(a), gfInv(u8(a))), 1) << a;
        EXPECT_EQ(gfDiv(u8(a), u8(a)), 1) << a;
        EXPECT_EQ(gfMul(u8(a), 1), a) << a;
        EXPECT_EQ(gfMul(u8(a), 0), 0) << a;
    }
    // Spot-check distributivity on a seeded sample.
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        u8 a = u8(rng.uniformInt(0, 255));
        u8 b = u8(rng.uniformInt(0, 255));
        u8 c = u8(rng.uniformInt(0, 255));
        EXPECT_EQ(gfMul(a, u8(b ^ c)), gfMul(a, b) ^ gfMul(a, c));
        EXPECT_EQ(gfMul(gfMul(a, b), c), gfMul(a, gfMul(b, c)));
        EXPECT_EQ(gfMul(a, b), gfMul(b, a));
    }
}

TEST(FecCodecTest, ReconstructsEveryErasurePatternUpToM)
{
    const int k = 4, m = 2, n = k + m;
    const size_t len = 37;
    FecCodec codec(k, m);
    std::vector<std::vector<u8>> data = randomShards(k, len, 11);
    std::vector<std::vector<u8>> parity;
    codec.encode(data, parity);
    ASSERT_EQ(int(parity.size()), m);

    // Every subset of <= m erased shards, exhaustively.
    for (int mask = 0; mask < (1 << n); ++mask) {
        if (__builtin_popcount(unsigned(mask)) > m)
            continue;
        std::vector<std::vector<u8>> shards = data;
        shards.insert(shards.end(), parity.begin(), parity.end());
        std::vector<bool> present(size_t(n), true);
        for (int i = 0; i < n; ++i) {
            if (mask & (1 << i)) {
                present[size_t(i)] = false;
                shards[size_t(i)].clear();
            }
        }
        ASSERT_TRUE(codec.reconstruct(shards, present)) << mask;
        for (int i = 0; i < k; ++i)
            EXPECT_EQ(shards[size_t(i)], data[size_t(i)]) << mask;
    }
}

TEST(FecCodecTest, RandomExactlyMErasuresRecoverBitExact)
{
    const int k = 16, m = 4;
    const size_t len = 211;
    FecCodec codec(k, m);
    std::vector<std::vector<u8>> data = randomShards(k, len, 23);
    std::vector<std::vector<u8>> parity;
    codec.encode(data, parity);
    for (u64 seed = 0; seed < 200; ++seed) {
        std::vector<std::vector<u8>> shards = data;
        shards.insert(shards.end(), parity.begin(), parity.end());
        std::vector<bool> present = erasurePattern(k + m, m, seed);
        for (int i = 0; i < k + m; ++i) {
            if (!present[size_t(i)])
                shards[size_t(i)].clear();
        }
        ASSERT_TRUE(codec.reconstruct(shards, present)) << seed;
        for (int i = 0; i < k; ++i)
            EXPECT_EQ(shards[size_t(i)], data[size_t(i)]) << seed;
    }
}

TEST(FecCodecTest, MorePlusOneErasuresFailLoudlyAndHarmlessly)
{
    const int k = 8, m = 3;
    FecCodec codec(k, m);
    std::vector<std::vector<u8>> data = randomShards(k, 64, 31);
    std::vector<std::vector<u8>> parity;
    codec.encode(data, parity);
    for (u64 seed = 0; seed < 50; ++seed) {
        std::vector<std::vector<u8>> shards = data;
        shards.insert(shards.end(), parity.begin(), parity.end());
        std::vector<bool> present = erasurePattern(k + m, m + 1, seed);
        for (int i = 0; i < k + m; ++i) {
            if (!present[size_t(i)])
                shards[size_t(i)].clear();
        }
        EXPECT_FALSE(codec.reconstruct(shards, present)) << seed;
        // Present data shards must be untouched by the failed attempt.
        for (int i = 0; i < k; ++i) {
            if (present[size_t(i)]) {
                EXPECT_EQ(shards[size_t(i)], data[size_t(i)]) << seed;
            }
        }
    }
}

TEST(FecCodecTest, ZeroParityIsAPassThrough)
{
    FecCodec codec(5, 0);
    std::vector<std::vector<u8>> data = randomShards(5, 16, 41);
    std::vector<std::vector<u8>> parity;
    codec.encode(data, parity);
    EXPECT_TRUE(parity.empty());
    std::vector<bool> present(5, true);
    EXPECT_TRUE(codec.reconstruct(data, present));
}

TEST(FecCodecTest, RejectsInvalidShapes)
{
    EXPECT_THROW(FecCodec(0, 1), PanicError);
    EXPECT_THROW(FecCodec(200, 100), PanicError);
}

TEST(ErasurePatternTest, DeterministicAndCounted)
{
    for (u64 seed = 0; seed < 20; ++seed) {
        std::vector<bool> a = erasurePattern(48, 7, seed);
        std::vector<bool> b = erasurePattern(48, 7, seed);
        EXPECT_EQ(a, b);
        EXPECT_EQ(std::count(a.begin(), a.end(), false), 7);
    }
}

TEST(WireGeometryTest, CountsAndRanges)
{
    WireConfig config;
    config.mtu_bytes = 121; // shard_len 100
    config.fec_overhead = 0.0;

    WireGeometry g = wireGeometryFor(1000, config);
    EXPECT_EQ(g.shard_len, 100);
    EXPECT_EQ(g.dataShardTotal(), 10);
    EXPECT_EQ(g.total_packets, 10);
    EXPECT_EQ(g.wire_bytes, size_t(10 * 121));
    EXPECT_EQ(g.blocks.size(), 1u);
    EXPECT_EQ(g.dataShardRange(0), (std::pair<size_t, size_t>(0, 100)));
    EXPECT_EQ(g.dataShardRange(9),
              (std::pair<size_t, size_t>(900, 1000)));

    // A short tail shard keeps its true byte range.
    WireGeometry tail = wireGeometryFor(950, config);
    EXPECT_EQ(tail.dataShardTotal(), 10);
    EXPECT_EQ(tail.dataShardRange(9),
              (std::pair<size_t, size_t>(900, 950)));
    EXPECT_EQ(tail.wire_bytes, size_t(9 * 121 + 21 + 50));

    // Parity: 10 data shards at 20 % overhead -> 2 parity shards.
    config.fec_overhead = 0.2;
    WireGeometry fec = wireGeometryFor(1000, config);
    EXPECT_EQ(fec.total_packets, 12);
    EXPECT_EQ(fec.blocks[0].parity_shards, 2);

    // Any positive overhead yields at least one parity shard.
    config.fec_overhead = 0.001;
    EXPECT_EQ(wireGeometryFor(1000, config).total_packets, 11);

    // Large frames split into blocks of at most 64 data shards.
    config.fec_overhead = 0.0;
    WireGeometry big = wireGeometryFor(100 * 100 + 1, config);
    EXPECT_EQ(big.dataShardTotal(), 101);
    EXPECT_EQ(big.blocks.size(), 2u);
    EXPECT_LE(big.blocks[0].data_shards, kMaxDataShardsPerBlock);
}

TEST(WireGeometryTest, MtuMustExceedHeader)
{
    WireConfig config;
    config.mtu_bytes = kPacketHeaderBytes;
    EXPECT_THROW(wireGeometryFor(100, config), PanicError);
}

TEST(WireGeometryTest, WirePacketCountIsHeaderAware)
{
    EXPECT_EQ(wirePacketCount(1379, 1400), 1);
    EXPECT_EQ(wirePacketCount(1380, 1400), 2);
    EXPECT_EQ(wirePacketCount(13790, 1400), 10);
}

TEST(WireDeliveryTest, OutcomesFromBitmaps)
{
    WireConfig config;
    config.mtu_bytes = 121;
    config.fec_overhead = 0.2; // 10 data + 2 parity
    WireGeometry g = wireGeometryFor(1000, config);
    ASSERT_EQ(g.total_packets, 12);

    std::vector<bool> all(12, true);
    EXPECT_EQ(evaluateWireDelivery(g, all).outcome,
              WireOutcome::Delivered);

    // Two data losses: exactly the parity budget.
    std::vector<bool> two = all;
    two[1] = two[5] = false;
    WireDeliveryEval recovered = evaluateWireDelivery(g, two);
    EXPECT_EQ(recovered.outcome, WireOutcome::FecRecovered);
    EXPECT_EQ(recovered.shards_recovered, 2);
    ASSERT_EQ(recovered.valid_ranges.size(), 1u);
    EXPECT_EQ(recovered.valid_ranges[0],
              (std::pair<size_t, size_t>(0, 1000)));

    // Losing a parity shard costs nothing while the data survives.
    std::vector<bool> parity_only = all;
    parity_only[10] = parity_only[11] = false;
    EXPECT_EQ(evaluateWireDelivery(g, parity_only).outcome,
              WireOutcome::Delivered);

    // Three losses exceed m=2: partial, with the received data
    // shards' byte ranges usable.
    std::vector<bool> three = all;
    three[0] = three[1] = three[2] = false;
    WireDeliveryEval partial = evaluateWireDelivery(g, three);
    EXPECT_EQ(partial.outcome, WireOutcome::Partial);
    EXPECT_EQ(partial.data_shards_lost, 3);
    ASSERT_EQ(partial.valid_ranges.size(), 1u);
    EXPECT_EQ(partial.valid_ranges[0],
              (std::pair<size_t, size_t>(300, 1000)));

    std::vector<bool> none(12, false);
    EXPECT_EQ(evaluateWireDelivery(g, none).outcome, WireOutcome::Lost);
}

TEST(PacketizerTest, RoundTripNoLoss)
{
    WireConfig config;
    config.mtu_bytes = 121;
    config.fec_overhead = 0.25;
    std::vector<u8> payload = randomBytes(3456, 99);
    auto packets = packetizeFrame(7, payload, config);
    WireGeometry g = wireGeometryFor(payload.size(), config);
    ASSERT_EQ(int(packets.size()), g.total_packets);

    PacketHeader h;
    ASSERT_TRUE(parsePacketHeader(packets[0], h));
    EXPECT_EQ(h.frame_id, 7u);
    EXPECT_EQ(h.frame_bytes, payload.size());
    EXPECT_FALSE(h.parity);

    ReassembledFrame out = reassembleFrame(packets, config);
    EXPECT_EQ(out.outcome, WireOutcome::Delivered);
    EXPECT_EQ(out.payload, payload);
    EXPECT_EQ(out.packets_rejected, 0);
}

TEST(PacketizerTest, RoundTripFecRecovery)
{
    WireConfig config;
    config.mtu_bytes = 121;
    config.fec_overhead = 0.25; // 13 data shards -> 3 parity
    std::vector<u8> payload = randomBytes(1234, 5);
    auto packets = packetizeFrame(3, payload, config);
    WireGeometry g = wireGeometryFor(payload.size(), config);
    ASSERT_EQ(g.blocks[0].parity_shards, 3);

    // Drop three data packets (within the parity budget), reordered
    // arrival for good measure.
    std::vector<std::vector<u8>> arrived;
    for (size_t i = 0; i < packets.size(); ++i) {
        if (i == 0 || i == 4 || i == 12)
            continue;
        arrived.push_back(packets[i]);
    }
    std::reverse(arrived.begin(), arrived.end());

    ReassembledFrame out = reassembleFrame(arrived, config);
    EXPECT_EQ(out.outcome, WireOutcome::FecRecovered);
    EXPECT_EQ(out.shards_recovered, 3);
    EXPECT_EQ(out.payload, payload);
}

TEST(PacketizerTest, RoundTripPartialKeepsReceivedBytes)
{
    WireConfig config;
    config.mtu_bytes = 121;
    config.fec_overhead = 0.0; // no parity: any loss is partial
    std::vector<u8> payload = randomBytes(1000, 17);
    auto packets = packetizeFrame(1, payload, config);
    ASSERT_EQ(packets.size(), 10u);

    std::vector<std::vector<u8>> arrived;
    for (size_t i = 0; i < packets.size(); ++i) {
        if (i == 2 || i == 3)
            continue;
        arrived.push_back(packets[i]);
    }
    ReassembledFrame out = reassembleFrame(arrived, config);
    EXPECT_EQ(out.outcome, WireOutcome::Partial);
    EXPECT_EQ(out.data_shards_lost, 2);
    ASSERT_EQ(out.payload.size(), payload.size());
    for (const auto &[a, b] : out.valid_ranges) {
        for (size_t i = a; i < b; ++i)
            ASSERT_EQ(out.payload[i], payload[i]) << i;
    }
    // The lost shards' ranges must not be claimed valid.
    for (const auto &[a, b] : out.valid_ranges)
        EXPECT_TRUE(b <= 200 || a >= 400);

    ReassembledFrame lost = reassembleFrame({}, config);
    EXPECT_EQ(lost.outcome, WireOutcome::Lost);
}

TEST(PacketizerTest, SliceIdsFollowTheSliceTable)
{
    WireConfig config;
    config.mtu_bytes = 121;
    std::vector<u8> payload = randomBytes(1000, 3);
    std::vector<std::pair<size_t, size_t>> slices = {{0, 450},
                                                     {450, 1000}};
    auto packets = packetizeFrame(2, payload, config, &slices);
    PacketHeader h;
    ASSERT_TRUE(parsePacketHeader(packets[0], h));
    EXPECT_EQ(h.slice_id, 0);
    ASSERT_TRUE(parsePacketHeader(packets[5], h)); // bytes 500..599
    EXPECT_EQ(h.slice_id, 1);
}

TEST(PacketizerTest, RejectsMalformedHeaders)
{
    WireConfig config;
    config.mtu_bytes = 121;
    std::vector<u8> payload = randomBytes(500, 29);
    auto packets = packetizeFrame(9, payload, config);

    PacketHeader h;
    EXPECT_FALSE(parsePacketHeader({}, h));
    EXPECT_FALSE(parsePacketHeader(std::vector<u8>(20, 0), h));

    std::vector<u8> bad_magic = packets[0];
    bad_magic[0] ^= 0xff;
    EXPECT_FALSE(parsePacketHeader(bad_magic, h));

    std::vector<u8> bad_version = packets[0];
    bad_version[2] += 1;
    EXPECT_FALSE(parsePacketHeader(bad_version, h));

    std::vector<u8> bad_flags = packets[0];
    bad_flags[3] = 0x80;
    EXPECT_FALSE(parsePacketHeader(bad_flags, h));

    std::vector<u8> truncated = packets[0];
    truncated.pop_back();
    EXPECT_FALSE(parsePacketHeader(truncated, h));
}

TEST(PacketizerTest, FuzzedPacketsNeverCrashTheReassembler)
{
    WireConfig config;
    config.mtu_bytes = 93;
    config.fec_overhead = 0.3;
    std::vector<u8> payload = randomBytes(2000, 101);
    const auto pristine = packetizeFrame(5, payload, config);

    for (u64 seed = 0; seed < 300; ++seed) {
        Rng rng(seed);
        std::vector<std::vector<u8>> mangled = pristine;
        const int mutations = rng.uniformInt(1, 8);
        for (int i = 0; i < mutations; ++i) {
            if (mangled.empty())
                break;
            size_t victim = size_t(
                rng.uniformInt(0, int(mangled.size()) - 1));
            switch (rng.uniformInt(0, 4)) {
              case 0: // flip a byte (header or payload)
                if (!mangled[victim].empty()) {
                    size_t pos = size_t(rng.uniformInt(
                        0, int(mangled[victim].size()) - 1));
                    mangled[victim][pos] ^= u8(rng.uniformInt(1, 255));
                }
                break;
              case 1: // truncate
                mangled[victim].resize(size_t(rng.uniformInt(
                    0, int(mangled[victim].size()))));
                break;
              case 2: // duplicate
                mangled.push_back(mangled[victim]);
                break;
              case 3: // drop
                mangled.erase(mangled.begin() + long(victim));
                break;
              case 4: // swap order
                std::swap(mangled[victim], mangled[0]);
                break;
            }
        }
        // Must not crash, and every claimed-valid range must stay
        // inside the payload buffer the reassembler sized. (Payload
        // *content* under header corruption is out of scope: the
        // format carries no checksum by design — the channel model
        // delivers or erases.)
        ReassembledFrame out = reassembleFrame(mangled, config);
        if (out.outcome != WireOutcome::Lost) {
            EXPECT_FALSE(out.payload.empty());
        }
        for (const auto &[a, b] : out.valid_ranges) {
            EXPECT_LT(a, b);
            EXPECT_LE(b, out.payload.size());
        }
    }
}

TEST(PacketizerTest, DuplicatedAndReorderedPacketsReassembleExactly)
{
    // The network may reorder freely and deliver the same packet
    // more than once (retransmit races); neither may change the
    // reassembled bytes. 200 seeded shuffles, each with a random
    // batch of duplicates spliced in: every one must come back
    // Delivered with the exact payload, duplicates counted as
    // rejects, never as data.
    WireConfig config;
    config.mtu_bytes = 121;
    config.fec_overhead = 0.25;
    std::vector<u8> payload = randomBytes(3210, 77);
    const auto pristine = packetizeFrame(11, payload, config);

    for (u64 seed = 0; seed < 200; ++seed) {
        Rng rng(seed);
        std::vector<std::vector<u8>> arrived = pristine;
        const int dupes = rng.uniformInt(1, 12);
        for (int i = 0; i < dupes; ++i) {
            arrived.push_back(pristine[size_t(
                rng.uniformInt(0, int(pristine.size()) - 1))]);
        }
        // Fisher–Yates shuffle on the seeded Rng.
        for (size_t i = arrived.size() - 1; i > 0; --i) {
            std::swap(arrived[i], arrived[size_t(
                                      rng.uniformInt(0, int(i)))]);
        }

        ReassembledFrame out = reassembleFrame(arrived, config);
        ASSERT_EQ(out.outcome, WireOutcome::Delivered)
            << "seed " << seed;
        ASSERT_EQ(out.payload, payload) << "seed " << seed;
        EXPECT_EQ(out.data_shards_lost, 0) << "seed " << seed;
        EXPECT_EQ(out.shards_recovered, 0) << "seed " << seed;
    }
}

} // namespace
} // namespace gssr
