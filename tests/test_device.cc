/**
 * @file
 * Unit tests for src/device: component latency/energy models and the
 * paper-anchored calibration of the two device profiles. These tests
 * pin the reproduction to the operating points the paper reports
 * (EDSR 300x300 RoI in ~16.2/16.4 ms, full 720p in ~217/233 ms,
 * full-frame GPU bilinear in ~1.4 ms).
 */

#include <gtest/gtest.h>

#include "device/profiles.hh"
#include "sr/edsr.hh"
#include "sr/interpolate.hh"

namespace gssr
{
namespace
{

/** MACs of the deployed SR model (EDSR-16/64 x2) for an n x n input. */
i64
edsrMacs(int h, int w)
{
    static const EdsrNetwork net{EdsrConfig{}};
    return net.macs(h, w);
}

TEST(NpuModelTest, LatencyMonotoneInWorkAndArea)
{
    NpuModel npu;
    EXPECT_LT(npu.latencyMs(1000, 100), npu.latencyMs(2000, 100));
    EXPECT_LT(npu.latencyMs(1000, 100), npu.latencyMs(1000, 1000000));
}

TEST(NpuModelTest, ZeroWorkCostsOverheadOnly)
{
    NpuModel npu;
    EXPECT_DOUBLE_EQ(npu.latencyMs(0, 0), npu.overhead_ms);
}

TEST(NpuModelTest, EnergyIsPowerTimesTime)
{
    NpuModel npu;
    npu.active_power_w = 2.0;
    EXPECT_DOUBLE_EQ(npu.energyMj(10.0), 20.0);
}

TEST(GalaxyTabS8Test, RoiWindowAnchor)
{
    // Paper Sec. IV-C: 300x300 RoI upscales in ~16.2 ms on the S8's
    // NPU — i.e. just inside the 16.66 ms deadline.
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    f64 roi_ms = s8.npu.latencyMs(edsrMacs(300, 300), 300 * 300);
    EXPECT_NEAR(roi_ms, 16.2, 0.8);
    EXPECT_LT(roi_ms, 1000.0 / 60.0);
}

TEST(GalaxyTabS8Test, FullFrameAnchor)
{
    // Paper Fig. 10a: full-frame 720p EDSR runs at ~4.6 FPS on the
    // S8 (~217 ms).
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    f64 full_ms =
        s8.npu.latencyMs(edsrMacs(720, 1280), 1280 * 720);
    EXPECT_NEAR(full_ms, 217.0, 10.0);
    EXPECT_NEAR(1000.0 / full_ms, 4.6, 0.3);
}

TEST(Pixel7ProTest, RoiAndFullFrameAnchors)
{
    // Paper Fig. 10c: RoI 16.4 ms, full frame ~233 ms on the Pixel.
    DeviceProfile pixel = DeviceProfile::pixel7Pro();
    f64 roi_ms =
        pixel.npu.latencyMs(edsrMacs(300, 300), 300 * 300);
    f64 full_ms =
        pixel.npu.latencyMs(edsrMacs(720, 1280), 1280 * 720);
    EXPECT_NEAR(roi_ms, 16.4, 0.8);
    EXPECT_NEAR(full_ms, 233.0, 10.0);
    EXPECT_NEAR(1000.0 / full_ms, 4.3, 0.3);
}

TEST(GpuModelTest, FullFrameBilinearAnchor)
{
    // Paper Sec. IV-C: non-RoI bilinear upscaling of a 1440p frame
    // takes ~1.4 ms on the mobile GPU.
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    i64 ops = resizeOpCount({2560, 1440}, InterpKernel::Bilinear);
    EXPECT_NEAR(s8.gpu.latencyMs(ops), 1.4, 0.2);
}

TEST(DecoderModelsTest, HardwareIsMuchFasterAndCheaperThanSoftware)
{
    DeviceProfile pixel = DeviceProfile::pixel7Pro();
    i64 px_720p = 1280 * 720;
    f64 hw_ms = pixel.hw_decoder.latencyMs(px_720p);
    f64 sw_ms = pixel.sw_decoder.latencyMs(px_720p);
    EXPECT_LT(hw_ms, 3.0);
    EXPECT_GT(sw_ms, 10.0);
    EXPECT_GT(pixel.sw_decoder.energyMj(sw_ms),
              pixel.hw_decoder.energyMj(hw_ms) * 5);
}

TEST(DecoderModelsTest, SoftwareDecodePlusNemoCpuUpscaleMissesDeadline)
{
    // The Fig. 2 observation: even NEMO's non-reference frames
    // (software decode + CPU interpolation) exceed 16.66 ms.
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    f64 decode_ms = s8.sw_decoder.latencyMs(1280 * 720);
    EXPECT_GT(decode_ms, 1000.0 / 60.0 * 0.6);
}

TEST(DisplayModelTest, LatencyAndEnergy)
{
    DisplayModel display;
    EXPECT_DOUBLE_EQ(display.latencyMs(),
                     display.queue_ms + display.vsync_wait_ms +
                         display.scanout_ms);
    EXPECT_NEAR(display.energyMjPerFrame(16.66),
                display.processing_power_w * 16.66, 1e-9);
}

TEST(RadioModelTest, EnergyScalesWithBytes)
{
    RadioModel radio;
    EXPECT_DOUBLE_EQ(radio.energyMj(2000000),
                     radio.energyMj(1000000) * 2.0);
}

TEST(ProfilesTest, DisplayGeometryMatchesSpecs)
{
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DeviceProfile pixel = DeviceProfile::pixel7Pro();
    EXPECT_NEAR(s8.display_ppi, 274.0, 1.0);   // GSMArena spec
    EXPECT_NEAR(pixel.display_ppi, 512.0, 2.0);
    // The tablet's larger panel costs more base power (the paper's
    // explanation for the S8's smaller energy savings).
    EXPECT_GT(s8.base_power_w, pixel.base_power_w);
}

TEST(ProfilesTest, EyeTrackingPowerMatchesPaperProfiling)
{
    // Sec. III-A: +2.8 W for camera-based eye tracking.
    EXPECT_DOUBLE_EQ(
        DeviceProfile::pixel7Pro().camera_eye_tracking_w, 2.8);
}

TEST(ModelGuardTest, NegativeInputsPanicInsteadOfPropagating)
{
    // Every model rejects negative work/time at the call site — a
    // corrupted byte count must fail loudly here, not surface as a
    // negative latency in a bench table.
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    EXPECT_THROW(s8.hw_decoder.latencyMs(-1), PanicError);
    EXPECT_THROW(s8.sw_decoder.latencyMs(-1), PanicError);
    EXPECT_THROW(s8.radio.energyMj(-1), PanicError);
    EXPECT_THROW(s8.display.energyMjPerFrame(-0.1), PanicError);

    DisplayModel display;
    display.vsync_wait_ms = -8.3;
    EXPECT_THROW(display.latencyMs(), PanicError);
}

TEST(ModelGuardTest, ZeroWorkIsValid)
{
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    EXPECT_DOUBLE_EQ(s8.hw_decoder.latencyMs(0),
                     s8.hw_decoder.base_ms);
    EXPECT_DOUBLE_EQ(s8.radio.energyMj(0), 0.0);
    EXPECT_DOUBLE_EQ(s8.display.energyMjPerFrame(0.0), 0.0);
}

TEST(ServerProfileTest, UtilizationAndEncodeAnchors)
{
    ServerProfile server = ServerProfile::gamingWorkstation();
    // Sec. IV-B2: GPU utilization 79 % at 1440p vs 52 % at 720p.
    EXPECT_DOUBLE_EQ(server.gpu_utilization_1440p, 0.79);
    EXPECT_DOUBLE_EQ(server.gpu_utilization_720p, 0.52);
    EXPECT_GT(server.render_1440p_ms, server.render_720p_ms);
    // 720p encode fits comfortably in a 60 FPS budget.
    EXPECT_LT(server.encodeLatencyMs(1280 * 720), 5.0);
}

} // namespace
} // namespace gssr
