/**
 * @file
 * Property tests, calibration fuzz tests and end-to-end quality
 * tests for the hybrid-precision quantized inference path (nn/quant,
 * sr/srcnn_quant, the precision-aware NPU model and the DnnUpscaler
 * precision knob). The property suite pins the symmetric absmax scale
 * math (scale correctness, saturation, error bound, idempotence); the
 * fuzz suite hammers the calibration observer with 200 randomized
 * tensors plus degenerate shapes (all-zero channels, single-value
 * channels, extreme dynamic range) and demands finite scales and
 * NaN/inf-free round trips; the e2e suite checks the NAWQ-style
 * hybrid schedule lands within 0.5 dB of fp32 on renderer content
 * while int8-everywhere is strictly worse.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "device/models.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "nn/quant.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "sr/edsr.hh"
#include "sr/srcnn_quant.hh"
#include "sr/trainer.hh"
#include "sr/upscaler.hh"

namespace gssr
{
namespace
{

Tensor
randomTensor(int c, int h, int w, u64 seed, f64 lo = -1.0,
             f64 hi = 1.0)
{
    Rng rng(seed);
    Tensor t(c, h, w);
    for (auto &v : t.data())
        v = f32(rng.uniform(lo, hi));
    return t;
}

/** Quick hermetically trained net shared by the e2e tests (separate
 *  cache path from the bench net to stay hermetic). */
std::shared_ptr<const CompactSrNet>
quickTrainedNet()
{
    static std::shared_ptr<const CompactSrNet> net = [] {
        TrainerConfig config;
        config.iterations = 250;
        return std::make_shared<const CompactSrNet>(
            trainedSrNet("", config));
    }();
    return net;
}

// ---------------------------------------------------------------
// Scale properties.
// ---------------------------------------------------------------

TEST(QuantScaleTest, PerChannelScalesAreAbsmaxOverQmax)
{
    Tensor t = randomTensor(4, 9, 11, 31, -3.0, 5.0);
    ChannelRanges ranges;
    ranges.observe(t);
    ASSERT_EQ(ranges.channels(), 4);

    for (int c = 0; c < 4; ++c) {
        // Recompute the channel absmax directly.
        f32 absmax = 0.0f;
        const f32 *src = t.channelData(c);
        for (i64 i = 0; i < i64(t.height()) * t.width(); ++i)
            absmax = std::max(absmax, std::abs(src[size_t(i)]));
        EXPECT_EQ(ranges.channelAbsMax(c), absmax) << c;
        EXPECT_EQ(ranges.channelScales(QuantBits::Int8)[size_t(c)],
                  absmax / 127.0f)
            << c;
        EXPECT_EQ(ranges.channelScales(QuantBits::Int16)[size_t(c)],
                  absmax / 32767.0f)
            << c;
    }
    EXPECT_EQ(ranges.tensorScale(QuantBits::Int8),
              ranges.tensorAbsMax() / 127.0f);
}

TEST(QuantScaleTest, ObservationsFoldByMaxAcrossTheCalibrationSet)
{
    ChannelRanges ranges;
    ranges.observe(randomTensor(2, 5, 5, 1, -0.5, 0.5));
    f32 first = ranges.channelAbsMax(0);
    Tensor bigger(2, 1, 1);
    bigger.at(0, 0, 0) = -7.5f;
    ranges.observe(bigger);
    EXPECT_EQ(ranges.channelAbsMax(0), 7.5f);
    EXPECT_GE(ranges.channelAbsMax(0), first);
}

TEST(QuantScaleTest, DegenerateRangesFallBackToOne)
{
    // All-zero channel.
    EXPECT_EQ(quantScaleFor(0.0f, QuantBits::Int8), 1.0f);
    EXPECT_EQ(quantScaleFor(0.0f, QuantBits::Int16), 1.0f);
    // So small that absmax/qmax underflows to zero.
    EXPECT_EQ(quantScaleFor(1e-44f, QuantBits::Int8), 1.0f);
    // Tiny but representable: finite and positive, no fallback.
    f32 tiny = quantScaleFor(1e-30f, QuantBits::Int8);
    EXPECT_TRUE(std::isfinite(tiny));
    EXPECT_GT(tiny, 0.0f);
    // Huge: still finite.
    f32 huge = quantScaleFor(1e37f, QuantBits::Int16);
    EXPECT_TRUE(std::isfinite(huge));
    EXPECT_GT(huge, 0.0f);
}

// ---------------------------------------------------------------
// Quantize/dequantize properties.
// ---------------------------------------------------------------

TEST(QuantizeTest, SaturatesAtTheSymmetricRange)
{
    Tensor t(1, 1, 6);
    t.at(0, 0, 0) = 10.0f;
    t.at(0, 0, 1) = -10.0f;
    t.at(0, 0, 2) = 1.0f;
    t.at(0, 0, 3) = -1.0f;
    t.at(0, 0, 4) = 0.5f;
    t.at(0, 0, 5) = 0.0f;

    // Calibrated for absmax == 1: everything beyond saturates.
    QuantizedTensor q8 =
        quantizeTensor(t, {1.0f / 127.0f}, QuantBits::Int8);
    EXPECT_EQ(q8.data[0], 127);
    EXPECT_EQ(q8.data[1], -127);
    EXPECT_EQ(q8.data[2], 127);
    EXPECT_EQ(q8.data[3], -127);
    EXPECT_EQ(q8.data[4], 64); // lround(0.5 * 127) = 64
    EXPECT_EQ(q8.data[5], 0);

    QuantizedTensor q16 =
        quantizeTensor(t, {1.0f / 32767.0f}, QuantBits::Int16);
    EXPECT_EQ(q16.data[0], 32767);
    EXPECT_EQ(q16.data[1], -32767);
    EXPECT_EQ(q16.data[2], 32767);
    EXPECT_EQ(q16.data[3], -32767);
    EXPECT_EQ(q16.data[5], 0);
}

TEST(QuantizeTest, RoundTripErrorBoundedByHalfScale)
{
    for (QuantBits bits : {QuantBits::Int8, QuantBits::Int16}) {
        Tensor t = randomTensor(3, 13, 17, 7, -2.5, 2.5);
        ChannelRanges ranges;
        ranges.observe(t);
        std::vector<f32> scales = ranges.channelScales(bits);
        Tensor back = dequantizeTensor(quantizeTensor(t, scales, bits));

        for (int c = 0; c < 3; ++c) {
            // Slack of 1e-4 * scale for the f32 divide/multiply.
            const f32 bound = scales[size_t(c)] * 0.5f * 1.0001f;
            for (i64 i = 0; i < i64(t.height()) * t.width(); ++i) {
                f32 err = std::abs(t.channelData(c)[size_t(i)] -
                                   back.channelData(c)[size_t(i)]);
                ASSERT_LE(err, bound)
                    << quantBitsName(bits) << " c=" << c << " i=" << i;
            }
        }
    }
}

TEST(QuantizeTest, DoubleQuantizationIsExactlyIdempotent)
{
    for (QuantBits bits : {QuantBits::Int8, QuantBits::Int16}) {
        // Include out-of-range values: saturation must be a fixed
        // point of the round trip too.
        Tensor t = randomTensor(2, 11, 9, 13, -4.0, 4.0);
        ChannelRanges ranges;
        ranges.observe(randomTensor(2, 11, 9, 14, -1.0, 1.0));
        std::vector<f32> scales = ranges.channelScales(bits);

        QuantizedTensor q1 = quantizeTensor(t, scales, bits);
        Tensor d1 = dequantizeTensor(q1);
        QuantizedTensor q2 = quantizeTensor(d1, scales, bits);
        Tensor d2 = dequantizeTensor(q2);

        // Bit-exact: identical integer codes, identical floats.
        ASSERT_EQ(q1.data.size(), q2.data.size());
        for (size_t i = 0; i < q1.data.size(); ++i)
            ASSERT_EQ(q1.data[i], q2.data[i])
                << quantBitsName(bits) << " i=" << i;
        EXPECT_EQ(fnv1aVec(d1.data()), fnv1aVec(d2.data()));
    }
}

// ---------------------------------------------------------------
// Calibration fuzz: randomized + degenerate inputs.
// ---------------------------------------------------------------

TEST(CalibrationFuzzTest, TwoHundredRandomTensorsStayFinite)
{
    for (u64 seed = 0; seed < 200; ++seed) {
        Rng rng(seed * 2654435761u + 17);
        const int c = int(rng.uniformInt(1, 6));
        const int h = int(rng.uniformInt(1, 13));
        const int w = int(rng.uniformInt(1, 17));

        // Extreme dynamic range: magnitudes spanning ~60 decades.
        Tensor t(c, h, w);
        for (auto &v : t.data()) {
            f64 mag = std::pow(10.0, rng.uniform(-30.0, 30.0));
            v = f32(rng.uniform(-1.0, 1.0) * mag);
        }
        // Degenerate shapes on a rotating schedule.
        if (seed % 3 == 0)
            for (i64 i = 0; i < i64(h) * w; ++i)
                t.channelData(0)[size_t(i)] = 0.0f; // all-zero channel
        if (seed % 5 == 0)
            for (i64 i = 0; i < i64(h) * w; ++i)
                t.channelData(c - 1)[size_t(i)] = 0.125f; // single value

        ChannelRanges ranges;
        ranges.observe(t);
        for (QuantBits bits : {QuantBits::Int8, QuantBits::Int16}) {
            std::vector<f32> scales = ranges.channelScales(bits);
            ASSERT_EQ(scales.size(), size_t(c));
            for (f32 s : scales) {
                ASSERT_TRUE(std::isfinite(s)) << "seed " << seed;
                ASSERT_GT(s, 0.0f) << "seed " << seed;
            }
            f32 ts = ranges.tensorScale(bits);
            ASSERT_TRUE(std::isfinite(ts) && ts > 0.0f);

            Tensor back =
                dequantizeTensor(quantizeTensor(t, scales, bits));
            for (f32 v : back.data())
                ASSERT_TRUE(std::isfinite(v)) << "seed " << seed;
        }
    }
}

TEST(CalibrationFuzzTest, AllZeroTensorQuantizesToExactZero)
{
    Tensor t(3, 7, 7); // zero-initialized
    ChannelRanges ranges;
    ranges.observe(t);
    for (QuantBits bits : {QuantBits::Int8, QuantBits::Int16}) {
        std::vector<f32> scales = ranges.channelScales(bits);
        for (f32 s : scales)
            EXPECT_EQ(s, 1.0f); // the degenerate fallback
        QuantizedTensor q = quantizeTensor(t, scales, bits);
        for (i16 v : q.data)
            ASSERT_EQ(v, 0);
        Tensor back = dequantizeTensor(q);
        for (f32 v : back.data())
            ASSERT_EQ(v, 0.0f);
    }
}

TEST(CalibrationFuzzTest, ExtremeDynamicRangeInOneTensor)
{
    // A channel holding both 1e37 and 1e-37: the huge value sets the
    // scale, the small one underflows to code 0 — never to NaN/inf.
    Tensor t(1, 1, 3);
    t.at(0, 0, 0) = 1e37f;
    t.at(0, 0, 1) = 1e-37f;
    t.at(0, 0, 2) = -1e37f;
    ChannelRanges ranges;
    ranges.observe(t);
    for (QuantBits bits : {QuantBits::Int8, QuantBits::Int16}) {
        f32 s = ranges.tensorScale(bits);
        ASSERT_TRUE(std::isfinite(s) && s > 0.0f);
        QuantizedTensor q = quantizeTensor(t, {s}, bits);
        EXPECT_EQ(q.data[0], quantMax(bits));
        EXPECT_EQ(q.data[1], 0);
        EXPECT_EQ(q.data[2], -quantMax(bits));
        Tensor back = dequantizeTensor(q);
        for (f32 v : back.data())
            ASSERT_TRUE(std::isfinite(v));
    }
}

// ---------------------------------------------------------------
// Quantized convolution.
// ---------------------------------------------------------------

TEST(QuantizedConvTest, TracksFloatConvAndInt16IsTighter)
{
    Rng rng(21);
    Conv2d conv(3, 5, 3);
    conv.initHe(rng);
    Tensor in = randomTensor(3, 19, 23, 22);
    ChannelRanges ranges;
    ranges.observe(in);

    Tensor ref = conv.forward(in);
    auto mseVs = [&](QuantBits bits) {
        QuantizedConv2d q(conv, bits, ranges.tensorScale(bits));
        Tensor out = q.forward(in);
        f64 sum = 0.0;
        for (size_t i = 0; i < out.data().size(); ++i) {
            f64 d = f64(out.data()[i]) - f64(ref.data()[i]);
            sum += d * d;
        }
        return sum / f64(out.data().size());
    };

    f64 mse16 = mseVs(QuantBits::Int16);
    f64 mse8 = mseVs(QuantBits::Int8);
    // Wider activations strictly reduce quantization noise, and both
    // widths stay in the same ballpark as the float layer.
    EXPECT_LT(mse16, mse8);
    EXPECT_LT(mse16, 1e-3);
    EXPECT_LT(mse8, 1e-1);
}

TEST(QuantizedConvTest, PerOutputChannelWeightScalesAreFinite)
{
    Rng rng(23);
    Conv2d conv(4, 6, 3);
    conv.initHe(rng);
    // Degenerate weights: zero out one output channel entirely.
    const i64 per_co = i64(4) * 3 * 3;
    for (i64 i = 0; i < per_co; ++i)
        conv.weights()[size_t(2 * per_co + i)] = 0.0f;

    QuantizedConv2d q(conv, QuantBits::Int8, 0.01f);
    ASSERT_EQ(q.weightScales().size(), 6u);
    for (f32 s : q.weightScales()) {
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GT(s, 0.0f);
    }
    // The zeroed channel hits the degenerate fallback and its output
    // must be exactly its bias.
    Tensor out = q.forward(randomTensor(4, 5, 5, 24));
    for (i64 i = 0; i < 25; ++i)
        EXPECT_EQ(out.channelData(2)[size_t(i)], conv.biases()[2]);
}

TEST(QuantizedConvTest, ScalarAndAvx2PathsBitIdentical)
{
    if (detectedSimdLevel() < SimdLevel::Avx2)
        GTEST_SKIP() << "host has no AVX2 path";

    auto run = [] {
        Rng rng(25);
        Conv2d conv(5, 7, 3); // odd channel counts: partial ci tiles
        conv.initHe(rng);
        Tensor in = randomTensor(5, 29, 37, 26); // odd spatial dims
        ChannelRanges ranges;
        ranges.observe(in);
        u64 h = 0;
        for (QuantBits bits : {QuantBits::Int8, QuantBits::Int16}) {
            QuantizedConv2d q(conv, bits, ranges.tensorScale(bits));
            h = fnv1aVec(q.forward(in).data(), h);
        }
        return h;
    };

    forceSimdLevel(SimdLevel::Scalar);
    u64 scalar = run();
    forceSimdLevel(SimdLevel::Avx2);
    u64 avx2 = run();
    clearForcedSimdLevel();
    EXPECT_EQ(scalar, avx2);
}

TEST(QuantizedConvTest, AccumulatorOverflowGuardTrips)
{
    Rng rng(27);
    // 58 * 3 * 3 = 522 taps: over the ~516-tap int16-activation bound
    // (522 * 127 * 32767 > 2^31), still fine for int8 activations.
    Conv2d big(58, 2, 3);
    big.initHe(rng);
    EXPECT_THROW(QuantizedConv2d(big, QuantBits::Int16, 0.01f),
                 PanicError);
    EXPECT_NO_THROW(QuantizedConv2d(big, QuantBits::Int8, 0.01f));
}

// ---------------------------------------------------------------
// Precision plans + quantized SR net.
// ---------------------------------------------------------------

TEST(PrecisionPlanTest, UniformPlansAndQuantizedDetection)
{
    PrecisionPlan fp = PrecisionPlan::uniform(3, Precision::Fp32);
    EXPECT_EQ(fp.name, "fp32");
    EXPECT_EQ(fp.layers.size(), 3u);
    EXPECT_FALSE(fp.anyQuantized());

    PrecisionPlan i8 = PrecisionPlan::uniform(3, Precision::Int8);
    EXPECT_EQ(i8.name, "int8");
    EXPECT_TRUE(i8.anyQuantized());

    // Hybrid is a network-level mode, not a per-layer value.
    EXPECT_THROW(PrecisionPlan::uniform(3, Precision::HybridInt8),
                 PanicError);
}

TEST(QuantizedSrNetTest, AllFp32PlanIsBitIdenticalToReference)
{
    auto net = std::make_shared<const CompactSrNet>();
    Tensor in = randomTensor(1, 24, 32, 33, 0.0, 1.0);
    SrCalibration cal = calibrateSrNet(*net, {in});
    QuantizedSrNet qnet(
        net, PrecisionPlan::uniform(CompactSrNet::kConvLayers,
                                    Precision::Fp32),
        cal);
    EXPECT_EQ(fnv1aVec(qnet.forward(in).data()),
              fnv1aVec(net->forward(in).data()));
}

TEST(QuantizedSrNetTest, QuantizedForwardStaysCloseToReference)
{
    auto net = quickTrainedNet();
    Tensor in = randomTensor(1, 24, 32, 35, 0.0, 1.0);
    SrCalibration cal = calibrateSrNet(*net, {in});
    Tensor ref = net->forward(in);

    for (Precision p : {Precision::Int16, Precision::HybridInt8,
                        Precision::Int8}) {
        QuantizedSrNet qnet(net, planForPrecision(net, cal, {in}, p),
                            cal);
        Tensor out = qnet.forward(in);
        ASSERT_TRUE(out.sameShape(ref));
        f64 sum = 0.0;
        for (size_t i = 0; i < out.data().size(); ++i) {
            f64 d = f64(out.data()[i]) - f64(ref.data()[i]);
            sum += d * d;
        }
        // In [0,1] luma space even int8-everywhere stays well under
        // perceptible drift on a single layer stack.
        EXPECT_LT(sum / f64(out.data().size()), 1e-3)
            << precisionName(p);
    }
}

TEST(HybridPlanTest, SpendsWideBudgetOnMostSensitiveLayer)
{
    auto net = quickTrainedNet();
    std::vector<Tensor> cal_set{randomTensor(1, 20, 28, 41, 0.0, 1.0)};
    SrCalibration cal = calibrateSrNet(*net, cal_set);

    std::vector<f64> sens = layerSensitivity(net, cal, cal_set);
    ASSERT_EQ(sens.size(), size_t(CompactSrNet::kConvLayers));
    for (f64 s : sens)
        EXPECT_GE(s, 0.0);

    PrecisionPlan plan = hybridPlan(net, cal, cal_set, 1);
    EXPECT_EQ(plan.name, "hybrid-int8");
    ASSERT_EQ(plan.layers.size(), size_t(CompactSrNet::kConvLayers));
    int wide = 0;
    size_t wide_index = 0;
    for (size_t i = 0; i < plan.layers.size(); ++i) {
        if (plan.layers[i] == Precision::Int16) {
            wide += 1;
            wide_index = i;
        } else {
            EXPECT_EQ(plan.layers[i], Precision::Int8);
        }
    }
    EXPECT_EQ(wide, 1);
    // The one wide layer is the sensitivity argmax.
    for (size_t i = 0; i < sens.size(); ++i)
        EXPECT_LE(sens[i], sens[wide_index]);
}

// ---------------------------------------------------------------
// Precision-aware NPU model.
// ---------------------------------------------------------------

TEST(NpuPrecisionModelTest, Fp32PathsAreBitIdenticalToLegacy)
{
    NpuModel npu;
    const i64 macs = 123456789012;
    const i64 area = 300 * 300;
    EXPECT_EQ(npu.latencyMs(macs, area, Precision::Fp32),
              npu.latencyMs(macs, area));
    NpuModel::InvocationCost c =
        npu.invocationCost(macs, area, Precision::Fp32);
    EXPECT_EQ(c.latency_ms, npu.latencyMs(macs, area));
    EXPECT_EQ(c.power_w, npu.active_power_w);
    EXPECT_EQ(npu.powerW(Precision::Fp32), npu.active_power_w);
    EXPECT_EQ(npu.throughputScale(Precision::Fp32), 1.0);
    EXPECT_EQ(npu.kneePx(Precision::Fp32), npu.area_knee_px);
}

TEST(NpuPrecisionModelTest, Int8HalvesLatencyAndEnergy)
{
    NpuModel npu;
    EdsrNetwork edsr(EdsrConfig{});
    for (Size roi : {Size{300, 300}, Size{1280, 720}}) {
        const i64 macs = edsr.macs(roi.height, roi.width);
        const i64 area = roi.area();
        auto cost = [&](Precision p) {
            return npu.invocationCost(macs, area, p);
        };
        NpuModel::InvocationCost fp32 = cost(Precision::Fp32);
        NpuModel::InvocationCost i16 = cost(Precision::Int16);
        NpuModel::InvocationCost i8 = cost(Precision::Int8);

        // The acceptance bar: int8 at least halves both latency and
        // energy vs fp32, and int16 sits strictly between.
        EXPECT_LE(i8.latency_ms, 0.5 * fp32.latency_ms);
        EXPECT_LE(i8.latency_ms * i8.power_w,
                  0.5 * fp32.latency_ms * fp32.power_w);
        EXPECT_LT(i8.latency_ms, i16.latency_ms);
        EXPECT_LT(i16.latency_ms, fp32.latency_ms);

        // Hybrid: int16 edge + int8 body lands between the uniforms.
        const i64 edge = edsr.macsEdge(roi.height, roi.width);
        ASSERT_GT(edge, 0);
        ASSERT_LT(edge, macs);
        NpuModel::InvocationCost hyb =
            npu.hybridCost(edge, macs - edge, area);
        EXPECT_GT(hyb.latency_ms, i8.latency_ms);
        EXPECT_LT(hyb.latency_ms, i16.latency_ms);
        EXPECT_GT(hyb.power_w, npu.powerW(Precision::Int8));
        EXPECT_LT(hyb.power_w, npu.active_power_w);
    }
}

TEST(NpuPrecisionModelTest, NarrowActivationsPushTheKneeOut)
{
    NpuModel npu;
    EXPECT_EQ(npu.kneePx(Precision::Int16), 2.0 * npu.area_knee_px);
    EXPECT_EQ(npu.kneePx(Precision::Int8), 4.0 * npu.area_knee_px);
}

// ---------------------------------------------------------------
// End-to-end quality on renderer scenes.
// ---------------------------------------------------------------

TEST(QuantizedSrE2ETest, Fp32KnobIsByteIdenticalToUpscale)
{
    auto net = quickTrainedNet();
    DnnUpscaler dnn(net, 2);
    GameWorld world(GameId::G7_TombRaider, 77);
    ColorImage hr = renderScene(world.sceneAt(1.3), {192, 128}).color;
    ColorImage lr = boxDownsample(hr, 2);

    ColorImage a = dnn.upscale(lr, 2);
    ColorImage b = dnn.upscaleWithPrecision(lr, 2, Precision::Fp32);
    u64 ha = fnv1aVec(a.r().data());
    ha = fnv1aVec(a.g().data(), ha);
    ha = fnv1aVec(a.b().data(), ha);
    u64 hb = fnv1aVec(b.r().data());
    hb = fnv1aVec(b.g().data(), hb);
    hb = fnv1aVec(b.b().data(), hb);
    EXPECT_EQ(ha, hb);
}

TEST(QuantizedSrE2ETest, HybridWithinHalfDbAndStrictlyBeatsInt8)
{
    auto net = quickTrainedNet();
    DnnUpscaler dnn(net, 2);

    // Held-out frames (different game/seed than the trainer corpus).
    GameWorld world(GameId::G7_TombRaider, 77);
    std::vector<ColorImage> frames;
    frames.push_back(renderScene(world.sceneAt(1.3), {320, 192}).color);
    frames.push_back(renderScene(world.sceneAt(2.6), {320, 192}).color);

    f64 sum_fp32 = 0.0, sum_hybrid = 0.0, sum_int8 = 0.0;
    for (const ColorImage &hr : frames) {
        ColorImage lr = boxDownsample(hr, 2);
        f64 p_fp32 = psnr(dnn.upscale(lr, 2), hr);
        f64 p_hyb = psnr(
            dnn.upscaleWithPrecision(lr, 2, Precision::HybridInt8),
            hr);
        f64 p_i8 = psnr(
            dnn.upscaleWithPrecision(lr, 2, Precision::Int8), hr);
        // Hybrid int8 holds within 0.5 dB of fp32 on every frame.
        EXPECT_GE(p_hyb, p_fp32 - 0.5) << "frame";
        sum_fp32 += p_fp32;
        sum_hybrid += p_hyb;
        sum_int8 += p_i8;
    }
    // int8-everywhere is strictly worse than the hybrid schedule —
    // the wide layer buys measurable quality.
    EXPECT_LT(sum_int8, sum_hybrid);
    // And hybrid is still a quality trade, not a free lunch: it can't
    // beat fp32 by more than noise.
    EXPECT_LE(sum_hybrid, sum_fp32 + 0.5);
}

} // namespace
} // namespace gssr
