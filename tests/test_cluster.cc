/**
 * @file
 * Cluster fault-tolerance tests: the handoff retry loop's backoff
 * properties (monotone nominal curve, cap, jitter bounds, seeded
 * determinism), the constructor guards, the M=1 no-fault golden
 * guard (a one-server cluster is bit-identical to a standalone
 * FleetServer), and the migration machinery end to end — server
 * crash and rolling maintenance displace every tenant without
 * permanent loss, control-plane partitions force retries and
 * deadline-expired cold re-admissions, the no-migration baseline
 * loses sessions, and faulty runs stay bit-deterministic.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

namespace gssr
{
namespace
{

const f64 kPeriod = 1000.0 / 60.0;

ClusterConfig
smallCluster(int servers, PlacementPolicy placement =
                              PlacementPolicy::LeastLoaded)
{
    ClusterConfig config;
    for (int s = 0; s < servers; ++s)
        config.servers.push_back({ServerProfile::edgeRack(8), 0.0,
                                  "local"});
    config.placement = placement;
    return config;
}

void
admitMix(ClusterController &cluster, int n)
{
    for (int i = 0; i < n; ++i) {
        AdmissionDecision d = cluster.admit(fleetMixSessionConfig(i));
        ASSERT_NE(d.outcome, AdmissionOutcome::Rejected);
    }
}

TEST(HandoffBackoffTest, NominalCurveIsMonotoneAndCapped)
{
    HandoffConfig config;
    config.base_backoff_ms = 5.0;
    config.backoff_multiplier = 1.7;
    config.max_backoff_ms = 120.0;
    EXPECT_EQ(handoffNominalBackoffMs(config, 0),
              config.base_backoff_ms);
    f64 prev = 0.0;
    for (int attempt = 0; attempt < 32; ++attempt) {
        const f64 b = handoffNominalBackoffMs(config, attempt);
        EXPECT_GE(b, prev);
        EXPECT_LE(b, config.max_backoff_ms);
        prev = b;
    }
    EXPECT_EQ(prev, config.max_backoff_ms); // cap reached
}

TEST(HandoffBackoffTest, JitterStaysWithinBounds)
{
    HandoffConfig config;
    config.jitter = 0.3;
    Rng rng(42);
    for (int attempt = 0; attempt < 8; ++attempt) {
        const f64 nominal = handoffNominalBackoffMs(config, attempt);
        for (int trial = 0; trial < 200; ++trial) {
            const f64 b = handoffBackoffMs(config, attempt, rng);
            EXPECT_GE(b, nominal * (1.0 - config.jitter));
            EXPECT_LE(b, nominal * (1.0 + config.jitter));
        }
    }
}

TEST(HandoffBackoffTest, SeededJitterIsDeterministic)
{
    HandoffConfig config;
    Rng a(7), b(7), c(8);
    bool diverged = false;
    for (int i = 0; i < 64; ++i) {
        const f64 ba = handoffBackoffMs(config, i % 6, a);
        const f64 bb = handoffBackoffMs(config, i % 6, b);
        const f64 bc = handoffBackoffMs(config, i % 6, c);
        EXPECT_EQ(ba, bb);
        diverged = diverged || ba != bc;
    }
    EXPECT_TRUE(diverged); // a different seed takes a different path
}

TEST(HandoffBackoffTest, ValidateRejectsBadPolicies)
{
    auto bad = [](auto mutate) {
        HandoffConfig config;
        mutate(config);
        EXPECT_THROW(validateHandoffConfig(config), PanicError);
    };
    bad([](HandoffConfig &c) { c.max_attempts = 0; });
    bad([](HandoffConfig &c) { c.base_backoff_ms = 0.0; });
    bad([](HandoffConfig &c) { c.backoff_multiplier = 0.5; });
    bad([](HandoffConfig &c) { c.max_backoff_ms = 1.0; });
    bad([](HandoffConfig &c) { c.jitter = 1.0; });
    bad([](HandoffConfig &c) { c.jitter = -0.1; });
    bad([](HandoffConfig &c) { c.deadline_ms = 0.0; });
}

TEST(ClusterGuardTest, CtorRejectsBadConfigs)
{
    EXPECT_THROW(ClusterController(ClusterConfig{}), PanicError);

    ClusterConfig no_slots = smallCluster(2);
    no_slots.servers[1].profile.gpu_slots = 0;
    EXPECT_THROW(ClusterController{no_slots}, PanicError);

    ClusterConfig negative_rtt = smallCluster(2);
    negative_rtt.servers[0].region_rtt_ms = -5.0;
    EXPECT_THROW(ClusterController{negative_rtt}, PanicError);

    ClusterConfig nan_rtt = smallCluster(2);
    nan_rtt.servers[0].region_rtt_ms =
        std::numeric_limits<f64>::quiet_NaN();
    EXPECT_THROW(ClusterController{nan_rtt}, PanicError);

    ClusterConfig no_replicas = smallCluster(2);
    no_replicas.hash_replicas = 0;
    EXPECT_THROW(ClusterController{no_replicas}, PanicError);

    ClusterConfig bad_handoff = smallCluster(2);
    bad_handoff.handoff.max_attempts = 0;
    EXPECT_THROW(ClusterController{bad_handoff}, PanicError);

    EXPECT_THROW(ServerProfile::edgeRack(0), PanicError);
}

TEST(ClusterGoldenTest, OneServerNoFaultMatchesStandaloneFleet)
{
    // The cluster layered over a single healthy server must be a
    // bit-identical no-op: same fingerprint chain, same sample
    // streams, same admission ledger as FleetServer::run.
    const int sessions = 12, ticks = 45;
    FleetServer fleet(ServerProfile::edgeRack(8), SchedulePolicy::Edf);
    for (int i = 0; i < sessions; ++i)
        fleet.admit(fleetMixSessionConfig(i));
    FleetResult direct = fleet.run(ticks);

    ClusterController cluster(smallCluster(1));
    for (int i = 0; i < sessions; ++i)
        cluster.admit(fleetMixSessionConfig(i));
    ClusterResult layered = cluster.run(ticks);

    EXPECT_EQ(layered.fleet.fingerprint, direct.fingerprint);
    ASSERT_EQ(layered.fleet.sessions.size(), direct.sessions.size());
    for (size_t i = 0; i < direct.sessions.size(); ++i) {
        EXPECT_EQ(layered.fleet.sessions[i].fingerprint,
                  direct.sessions[i].fingerprint);
    }
    EXPECT_EQ(layered.fleet.admitted, direct.admitted);
    EXPECT_EQ(layered.fleet.degraded, direct.degraded);
    EXPECT_EQ(layered.fleet.rejected, direct.rejected);
    EXPECT_EQ(layered.fleet.committed_cost_ms,
              direct.committed_cost_ms);
    EXPECT_EQ(layered.fleet.budget_ms, direct.budget_ms);
    EXPECT_EQ(layered.fleet.frames_total, direct.frames_total);
    EXPECT_EQ(layered.fleet.frames_shed, direct.frames_shed);
    EXPECT_EQ(layered.fleet.mtp_ms.count(), direct.mtp_ms.count());
    EXPECT_EQ(layered.fleet.mtp_ms.mean(), direct.mtp_ms.mean());
    EXPECT_EQ(layered.fleet.qoe.count(), direct.qoe.count());
    EXPECT_EQ(layered.fleet.qoe.percentile(10.0),
              direct.qoe.percentile(10.0));
    EXPECT_EQ(layered.fleet.aggregate_bitrate_mbps,
              direct.aggregate_bitrate_mbps);
    EXPECT_EQ(layered.sessions_displaced, 0);
    EXPECT_EQ(layered.migrations, 0);
}

TEST(ClusterMigrationTest, HandoffStateFollowsTheSession)
{
    // Export -> import -> re-export: the session resumes where it
    // left off (frame numbering, collected result) and the first
    // frame on the destination re-seeds the client with an intra.
    SessionConfig config = fleetMixSessionConfig(0);
    SessionEngine engine(config);
    for (int t = 0; t < 30; ++t)
        engine.finishFrame(engine.beginFrame(f64(t) * kPeriod));

    SessionHandoffState state = engine.exportHandoff();
    EXPECT_EQ(state.frames_run, 30);
    EXPECT_EQ(state.server_frame_index, 30);
    EXPECT_GT(state.mean_frame_bytes, 0.0);
    EXPECT_GT(state.aimd_target_mbps, 0.0);
    EXPECT_EQ(state.result.traces.size(), 30u);
    const size_t qoe_before = state.result.qoe_frames.size();
    const i64 intra_before = state.intra_refreshes;

    SessionEngine resumed(config, std::move(state));
    resumed.finishFrame(resumed.beginFrame(30.0 * kPeriod));
    EXPECT_EQ(resumed.result().traces.size(), 31u);
    EXPECT_EQ(resumed.result().qoe_frames.size(), qoe_before + 1);

    SessionHandoffState again = resumed.exportHandoff();
    EXPECT_EQ(again.frames_run, 31);
    EXPECT_EQ(again.server_frame_index, 31);
    // the forced destination intra refresh is in the ledger
    EXPECT_GE(again.intra_refreshes, intra_before + 1);
}

TEST(ClusterMigrationTest, ServerCrashMigratesEverySessionInTime)
{
    ClusterConfig config = smallCluster(3);
    ClusterController cluster(config);
    admitMix(cluster, 18);
    const i64 live = cluster.sessionCount();

    ClusterResult result = cluster.run(
        90, ClusterFaultScenario::serverCrash(0, 15, 30));

    EXPECT_GT(result.sessions_displaced, 0);
    EXPECT_EQ(result.sessions_lost, 0);
    EXPECT_EQ(result.migrations + result.cold_readmissions,
              result.sessions_displaced);
    EXPECT_EQ(i64(result.fleet.sessions.size()), live);
    // Recovery is bounded by the handoff deadline (plus the tick
    // quantization of the simulation).
    for (const HandoffResult &h : result.handoffs) {
        ASSERT_NE(h.outcome, HandoffOutcome::Lost);
        EXPECT_LE(h.time_to_recover_ms,
                  config.handoff.deadline_ms + kPeriod);
        EXPECT_GE(h.attempts, 1);
    }
    // The crashed server is empty; the survivors hold everyone.
    EXPECT_EQ(cluster.server(0).sessionCount(), 0);
    EXPECT_EQ(cluster.server(1).sessionCount() +
                  cluster.server(2).sessionCount(),
              live);
}

TEST(ClusterMigrationTest, NoMigrationBaselineLosesSessions)
{
    auto run = [](bool migration) {
        ClusterConfig config = smallCluster(3);
        config.migration = migration;
        ClusterController cluster(config);
        for (int i = 0; i < 18; ++i)
            cluster.admit(fleetMixSessionConfig(i));
        return cluster.run(90,
                           ClusterFaultScenario::serverCrash(0, 15,
                                                             30));
    };
    ClusterResult with = run(true);
    ClusterResult without = run(false);

    EXPECT_EQ(with.sessions_lost, 0);
    EXPECT_GT(without.sessions_lost, 0);
    EXPECT_EQ(without.sessions_lost, without.sessions_displaced);
    // Dead sessions score zero for the rest of the run, so the
    // migrating cluster's worst-tenant QoE strictly wins.
    EXPECT_GT(with.fleet.qoe.percentile(10.0),
              without.fleet.qoe.percentile(10.0));
    EXPECT_GT(with.fleet.frames_total, without.fleet.frames_total);
}

TEST(ClusterMigrationTest, RollingMaintenanceKeepsEverySession)
{
    ClusterController cluster(smallCluster(3));
    admitMix(cluster, 18);
    const i64 live = cluster.sessionCount();

    ClusterResult result = cluster.run(
        120, ClusterFaultScenario::rollingMaintenance(3, 10, 25));

    // Every server was cycled, so everyone moved at least once.
    EXPECT_GE(result.sessions_displaced, live);
    EXPECT_EQ(result.sessions_lost, 0);
    EXPECT_EQ(i64(result.fleet.sessions.size()), live);
    for (const HandoffResult &h : result.handoffs)
        EXPECT_NE(h.outcome, HandoffOutcome::Lost);
    EXPECT_EQ(cluster.sessionCount(), live);
}

TEST(ClusterMigrationTest, PartitionForcesRetriesAndColdFallback)
{
    // Crash a server while the control plane is partitioned for
    // longer than the handoff deadline: every displaced session must
    // burn retries against the partition, blow the deadline, and
    // come back through the cold re-admission path once the
    // partition heals.
    ClusterConfig config = smallCluster(2);
    config.handoff.deadline_ms = 100.0;
    ClusterController cluster(config);
    admitMix(cluster, 8);

    ClusterFaultScenario scenario =
        ClusterFaultScenario::serverCrash(0, 10, 60);
    scenario.events.push_back(
        {ClusterFaultKind::ControlPartition, 0, 10, 30});

    ClusterResult result = cluster.run(120, scenario);

    EXPECT_GT(result.sessions_displaced, 0);
    EXPECT_GT(result.handoff_retries, 0);
    EXPECT_EQ(result.migrations, 0); // deadline passed mid-partition
    EXPECT_EQ(result.cold_readmissions, result.sessions_displaced);
    EXPECT_EQ(result.sessions_lost, 0);
    for (const HandoffResult &h : result.handoffs) {
        EXPECT_EQ(h.outcome, HandoffOutcome::ColdReadmitted);
        EXPECT_GT(h.attempts, 1);
    }
}

TEST(ClusterMigrationTest, FaultyRunsAreDeterministic)
{
    auto once = [] {
        ClusterConfig config = smallCluster(3);
        config.seed = 99;
        ClusterController cluster(config);
        for (int i = 0; i < 18; ++i)
            cluster.admit(fleetMixSessionConfig(i));
        ClusterFaultScenario scenario =
            ClusterFaultScenario::serverCrash(0, 15, 30);
        scenario.events.push_back(
            {ClusterFaultKind::ControlPartition, 0, 15, 20});
        return cluster.run(90, scenario);
    };
    ClusterResult a = once();
    ClusterResult b = once();
    EXPECT_EQ(a.fleet.fingerprint, b.fleet.fingerprint);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.handoff_attempts, b.handoff_attempts);
    EXPECT_EQ(a.handoff_retries, b.handoff_retries);
    EXPECT_EQ(a.displaced_frames, b.displaced_frames);
    ASSERT_EQ(a.handoffs.size(), b.handoffs.size());
    for (size_t i = 0; i < a.handoffs.size(); ++i) {
        EXPECT_EQ(a.handoffs[i].to_server, b.handoffs[i].to_server);
        EXPECT_EQ(a.handoffs[i].completed_tick,
                  b.handoffs[i].completed_tick);
        EXPECT_EQ(a.handoffs[i].time_to_recover_ms,
                  b.handoffs[i].time_to_recover_ms);
    }
}

TEST(ClusterPlacementTest, PoliciesSpreadSessionsAcrossServers)
{
    for (PlacementPolicy policy : {PlacementPolicy::ConsistentHash,
                                   PlacementPolicy::LeastLoaded}) {
        ClusterController cluster(smallCluster(3, policy));
        admitMix(cluster, 12);
        EXPECT_EQ(cluster.sessionCount(), 12);
        int used = 0;
        for (int s = 0; s < cluster.serverCount(); ++s)
            used += cluster.server(s).sessionCount() > 0 ? 1 : 0;
        EXPECT_GE(used, 2) << placementPolicyName(policy);
    }
}

TEST(ClusterPlacementTest, RegionRttFollowsTheSessionHome)
{
    // A remote region's RTT penalty lands in the admitted config.
    ClusterConfig config = smallCluster(1);
    config.servers[0].region_rtt_ms = 40.0;
    config.servers[0].region = "remote";
    ClusterController cluster(config);
    SessionConfig base = fleetMixSessionConfig(0);
    AdmissionDecision d = cluster.admit(base);
    ASSERT_NE(d.outcome, AdmissionOutcome::Rejected);
    EXPECT_EQ(d.config.channel.rtt_ms, base.channel.rtt_ms + 40.0);
}

} // namespace
} // namespace gssr
