/**
 * @file
 * Unit tests for src/common: geometry types, logging/error helpers,
 * the deterministic RNG, streaming statistics and the table writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace gssr
{
namespace
{

TEST(RectTest, AreaAndEmpty)
{
    Rect r{2, 3, 10, 5};
    EXPECT_EQ(r.area(), 50);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(Rect{}.empty());
    EXPECT_TRUE((Rect{0, 0, 0, 5}).empty());
}

TEST(RectTest, ContainsPoint)
{
    Rect r{2, 3, 10, 5};
    EXPECT_TRUE(r.contains(2, 3));
    EXPECT_TRUE(r.contains(11, 7));
    EXPECT_FALSE(r.contains(12, 3));
    EXPECT_FALSE(r.contains(2, 8));
    EXPECT_FALSE(r.contains(1, 3));
}

TEST(RectTest, ContainsRect)
{
    Rect outer{0, 0, 100, 50};
    EXPECT_TRUE(outer.contains(Rect{0, 0, 100, 50}));
    EXPECT_TRUE(outer.contains(Rect{10, 10, 20, 20}));
    EXPECT_FALSE(outer.contains(Rect{90, 40, 20, 20}));
    EXPECT_FALSE(outer.contains(Rect{-1, 0, 10, 10}));
}

TEST(RectTest, Intersection)
{
    Rect a{0, 0, 10, 10};
    Rect b{5, 5, 10, 10};
    Rect i = a.intersect(b);
    EXPECT_EQ(i, (Rect{5, 5, 5, 5}));
    EXPECT_TRUE(a.intersect(Rect{20, 20, 5, 5}).empty());
    // Intersection is commutative.
    EXPECT_EQ(a.intersect(b), b.intersect(a));
}

TEST(SizeTest, Area)
{
    EXPECT_EQ((Size{1280, 720}).area(), 921600);
    EXPECT_EQ((Size{2560, 1440}).area(), 3686400);
}

TEST(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
}

TEST(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST(LoggingTest, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(GSSR_ASSERT(1 + 1 == 2, "math"));
    EXPECT_THROW(GSSR_ASSERT(false, "always"), PanicError);
}

TEST(LoggingTest, MessageContainsFormattedArgs)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=x");
    }
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        f64 u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformIntCoversRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue)
{
    Rng rng(7);
    EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximatelyStandard)
{
    Rng rng(11);
    SampleStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.03);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(f64(hits) / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng parent(17);
    Rng child = parent.fork();
    // The fork must not replay the parent's outputs.
    Rng parent2(17);
    parent2.fork();
    EXPECT_NE(child.next(), parent.next());
}

TEST(MathTest, ClampAndLerp)
{
    EXPECT_EQ(clamp(5, 0, 10), 5);
    EXPECT_EQ(clamp(-1, 0, 10), 0);
    EXPECT_EQ(clamp(11, 0, 10), 10);
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

TEST(MathTest, ToPixelClamps)
{
    EXPECT_EQ(toPixel(-5.0), 0);
    EXPECT_EQ(toPixel(0.4), 0);
    EXPECT_EQ(toPixel(0.6), 1);
    EXPECT_EQ(toPixel(254.6), 255);
    EXPECT_EQ(toPixel(300.0), 255);
}

TEST(MathTest, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(MathTest, Gaussian2dPeaksAtCentre)
{
    f64 centre = gaussian2d(50, 50, 50, 50, 10);
    f64 off = gaussian2d(60, 50, 50, 50, 10);
    EXPECT_DOUBLE_EQ(centre, 1.0);
    EXPECT_LT(off, centre);
    EXPECT_GT(off, 0.0);
}

TEST(MathTest, Vec3Operations)
{
    Vec3 a{1, 0, 0};
    Vec3 b{0, 1, 0};
    Vec3 c = a.cross(b);
    EXPECT_DOUBLE_EQ(c.z, 1.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
    EXPECT_DOUBLE_EQ((a + b).length(), std::sqrt(2.0));
    Vec3 n = Vec3{3, 4, 0}.normalized();
    EXPECT_NEAR(n.length(), 1.0, 1e-12);
}

TEST(MathTest, Mat4IdentityAndTranslate)
{
    Mat4 m = Mat4::translate({1, 2, 3});
    f64 w = 0.0;
    Vec3 p = m.transformPoint({0, 0, 0}, w);
    EXPECT_DOUBLE_EQ(p.x, 1.0);
    EXPECT_DOUBLE_EQ(p.y, 2.0);
    EXPECT_DOUBLE_EQ(p.z, 3.0);
    EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(MathTest, Mat4RotateYQuarterTurn)
{
    Mat4 m = Mat4::rotateY(M_PI / 2.0);
    f64 w = 0.0;
    Vec3 p = m.transformPoint({1, 0, 0}, w);
    EXPECT_NEAR(p.x, 0.0, 1e-12);
    EXPECT_NEAR(p.z, -1.0, 1e-12);
}

TEST(MathTest, Mat4Composition)
{
    Mat4 t = Mat4::translate({5, 0, 0});
    Mat4 s = Mat4::scale({2, 2, 2});
    f64 w = 0.0;
    // translate(scale(p)): scale applied first.
    Vec3 p = (t * s).transformPoint({1, 1, 1}, w);
    EXPECT_DOUBLE_EQ(p.x, 7.0);
    EXPECT_DOUBLE_EQ(p.y, 2.0);
}

TEST(StatsTest, MeanVarianceMinMax)
{
    SampleStats s;
    for (f64 v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, Percentiles)
{
    SampleStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(f64(i));
    EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(StatsTest, EmptyStatsSafeDefaults)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_THROW(s.percentile(50), PanicError);
}

TEST(TableTest, TextRenderingAligned)
{
    TableWriter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream oss;
    t.renderText(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, CsvQuoting)
{
    TableWriter t({"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    std::ostringstream oss;
    t.renderCsv(oss);
    EXPECT_NE(oss.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(oss.str().find("\"he said \"\"hi\"\"\""),
              std::string::npos);
}

TEST(TableTest, RowArityChecked)
{
    TableWriter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TableWriter::num(2.0, 0), "2");
    EXPECT_EQ(TableWriter::num(1.005, 1), "1.0");
}

} // namespace
} // namespace gssr
