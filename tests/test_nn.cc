/**
 * @file
 * Unit tests for src/nn: tensors, convolution forward/backward
 * (including numerical gradient checks), ReLU, PixelShuffle, the MSE
 * loss, the Adam optimizer and weight serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/layers.hh"
#include "nn/optimizer.hh"
#include "nn/tensor.hh"

namespace gssr
{
namespace
{

TEST(TensorTest, ShapeAndAccess)
{
    Tensor t(2, 3, 4);
    EXPECT_EQ(t.channels(), 2);
    EXPECT_EQ(t.height(), 3);
    EXPECT_EQ(t.width(), 4);
    EXPECT_EQ(t.elementCount(), 24);
    t.at(1, 2, 3) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2, 3), 5.0f);
    EXPECT_THROW(t.at(2, 0, 0), PanicError);
}

TEST(TensorTest, PlaneRoundTrip)
{
    PlaneU8 plane(4, 3);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 4; ++x)
            plane.at(x, y) = u8(x * 60 + y * 10);
    Tensor t = Tensor::fromPlane(plane);
    EXPECT_EQ(t.channels(), 1);
    PlaneU8 back = t.toPlane();
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_NEAR(back.at(x, y), plane.at(x, y), 1);
}

TEST(TensorTest, ToPlaneClampsOutOfRange)
{
    Tensor t(1, 1, 2);
    t.at(0, 0, 0) = -0.5f;
    t.at(0, 0, 1) = 1.5f;
    PlaneU8 p = t.toPlane();
    EXPECT_EQ(p.at(0, 0), 0);
    EXPECT_EQ(p.at(1, 0), 255);
}

TEST(TensorTest, AddRequiresSameShape)
{
    Tensor a(1, 2, 2), b(1, 2, 3);
    EXPECT_THROW(a.add(b), PanicError);
}

TEST(Conv2dTest, IdentityKernelPassesThrough)
{
    Conv2d conv(1, 1, 3);
    conv.weights()[4] = 1.0f; // centre tap
    Tensor in(1, 4, 4);
    for (int i = 0; i < 16; ++i)
        in.data()[size_t(i)] = f32(i);
    Tensor out = conv.forward(in);
    for (int i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(out.data()[size_t(i)], f32(i));
}

TEST(Conv2dTest, BiasAddsEverywhere)
{
    Conv2d conv(1, 2, 1);
    conv.biases()[0] = 3.0f;
    conv.biases()[1] = -1.0f;
    Tensor in(1, 2, 2);
    Tensor out = conv.forward(in);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 3.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0, 0), -1.0f);
}

TEST(Conv2dTest, KnownBoxFilter)
{
    Conv2d conv(1, 1, 3);
    for (auto &w : conv.weights())
        w = 1.0f;
    Tensor in(1, 3, 3);
    in.fill(1.0f);
    Tensor out = conv.forward(in);
    // Centre sees all nine ones; corner sees four (zero padding).
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 9.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
}

TEST(Conv2dTest, MacCountFormula)
{
    Conv2d conv(3, 8, 3);
    EXPECT_EQ(conv.macs(10, 20), i64(8) * 3 * 9 * 10 * 20);
}

TEST(Conv2dTest, ChannelMismatchThrows)
{
    Conv2d conv(2, 4, 3);
    Tensor in(3, 4, 4);
    EXPECT_THROW(conv.forward(in), PanicError);
}

/** Numerical gradient check of Conv2d via central differences. */
TEST(Conv2dTest, GradientsMatchNumerical)
{
    Rng rng(5);
    Conv2d conv(2, 3, 3);
    conv.initHe(rng);
    Tensor in(2, 5, 5);
    for (auto &v : in.data())
        v = f32(rng.uniform(-1.0, 1.0));
    Tensor target(3, 5, 5);
    for (auto &v : target.data())
        v = f32(rng.uniform(-1.0, 1.0));

    auto loss_of = [&]() {
        Tensor out = conv.forward(in);
        Tensor grad;
        return mseLoss(out, target, grad);
    };

    // Analytic gradients.
    Tensor out = conv.forward(in);
    Tensor grad;
    mseLoss(out, target, grad);
    Tensor grad_in = conv.backward(in, grad);
    auto params = conv.params();
    AlignedVec<f32> analytic_w = *params[0].grads;
    AlignedVec<f32> analytic_b = *params[1].grads;

    const f64 eps = 1e-3;
    // Check a sample of weight gradients.
    for (size_t idx : {size_t(0), size_t(7), size_t(25), size_t(40)}) {
        f32 saved = conv.weights()[idx];
        conv.weights()[idx] = f32(saved + eps);
        f64 up = loss_of();
        conv.weights()[idx] = f32(saved - eps);
        f64 down = loss_of();
        conv.weights()[idx] = saved;
        f64 numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(analytic_w[idx], numeric, 2e-3)
            << "weight " << idx;
    }
    // Check a bias gradient.
    {
        f32 saved = conv.biases()[1];
        conv.biases()[1] = f32(saved + eps);
        f64 up = loss_of();
        conv.biases()[1] = f32(saved - eps);
        f64 down = loss_of();
        conv.biases()[1] = saved;
        EXPECT_NEAR(analytic_b[1], (up - down) / (2.0 * eps), 2e-3);
    }
    // Check input gradients numerically.
    for (size_t idx : {size_t(3), size_t(12), size_t(30)}) {
        f32 saved = in.data()[idx];
        in.data()[idx] = f32(saved + eps);
        f64 up = loss_of();
        in.data()[idx] = f32(saved - eps);
        f64 down = loss_of();
        in.data()[idx] = saved;
        EXPECT_NEAR(grad_in.data()[idx], (up - down) / (2.0 * eps),
                    2e-3)
            << "input " << idx;
    }
}

TEST(ReluTest, ForwardAndBackward)
{
    Tensor in(1, 1, 4);
    in.data() = {-2.0f, -0.5f, 0.5f, 2.0f};
    Tensor out = Relu::forward(in);
    EXPECT_FLOAT_EQ(out.data()[0], 0.0f);
    EXPECT_FLOAT_EQ(out.data()[2], 0.5f);

    Tensor grad(1, 1, 4);
    grad.fill(1.0f);
    Tensor gin = Relu::backward(in, grad);
    EXPECT_FLOAT_EQ(gin.data()[0], 0.0f);
    EXPECT_FLOAT_EQ(gin.data()[1], 0.0f);
    EXPECT_FLOAT_EQ(gin.data()[2], 1.0f);
    EXPECT_FLOAT_EQ(gin.data()[3], 1.0f);
}

TEST(PixelShuffleTest, RearrangesDepthToSpace)
{
    PixelShuffle shuffle(2);
    Tensor in(4, 1, 1);
    in.data() = {1.0f, 2.0f, 3.0f, 4.0f};
    Tensor out = shuffle.forward(in);
    EXPECT_EQ(out.channels(), 1);
    EXPECT_EQ(out.height(), 2);
    EXPECT_EQ(out.width(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 2.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0), 3.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 4.0f);
}

TEST(PixelShuffleTest, BackwardIsExactInverse)
{
    PixelShuffle shuffle(2);
    Rng rng(6);
    Tensor in(8, 3, 4);
    for (auto &v : in.data())
        v = f32(rng.uniform(-1.0, 1.0));
    Tensor out = shuffle.forward(in);
    Tensor back = shuffle.backward(out);
    ASSERT_TRUE(back.sameShape(in));
    for (size_t i = 0; i < in.data().size(); ++i)
        EXPECT_FLOAT_EQ(back.data()[i], in.data()[i]);
}

TEST(PixelShuffleTest, BadChannelCountThrows)
{
    PixelShuffle shuffle(2);
    Tensor in(3, 2, 2); // 3 not divisible by 4
    EXPECT_THROW(shuffle.forward(in), PanicError);
}

TEST(MseLossTest, ValueAndGradient)
{
    Tensor pred(1, 1, 2);
    pred.data() = {1.0f, 3.0f};
    Tensor target(1, 1, 2);
    target.data() = {0.0f, 1.0f};
    Tensor grad;
    f64 loss = mseLoss(pred, target, grad);
    // ((1)^2 + (2)^2) / 2 = 2.5.
    EXPECT_NEAR(loss, 2.5, 1e-9);
    EXPECT_FLOAT_EQ(grad.data()[0], 1.0f);  // 2*1/2
    EXPECT_FLOAT_EQ(grad.data()[1], 2.0f);  // 2*2/2
}

TEST(AdamTest, ConvergesOnQuadratic)
{
    // Minimize (w - 3)^2 over a single scalar parameter.
    AlignedVec<f32> w = {0.0f};
    AlignedVec<f32> g = {0.0f};
    Adam::Config config;
    config.learning_rate = 0.1;
    Adam adam({{&w, &g}}, config);
    for (int i = 0; i < 300; ++i) {
        g[0] = 2.0f * (w[0] - 3.0f);
        adam.step();
    }
    EXPECT_NEAR(w[0], 3.0f, 0.05);
    EXPECT_EQ(adam.stepCount(), 300);
}

TEST(AdamTest, StepClearsGradients)
{
    AlignedVec<f32> w = {1.0f};
    AlignedVec<f32> g = {5.0f};
    std::vector<ParamRef> params = {{&w, &g}};
    Adam adam(params);
    adam.step();
    EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(ParamsIoTest, SaveLoadRoundTrip)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "gssr_weights.bin")
            .string();
    AlignedVec<f32> a = {1.0f, 2.0f, 3.0f};
    AlignedVec<f32> ag(3, 0.0f);
    AlignedVec<f32> b = {-1.5f};
    AlignedVec<f32> bg(1, 0.0f);
    saveParams(path, {{&a, &ag}, {&b, &bg}});

    AlignedVec<f32> a2(3, 0.0f), b2(1, 0.0f);
    EXPECT_TRUE(loadParams(path, {{&a2, &ag}, {&b2, &bg}}));
    EXPECT_EQ(a2, a);
    EXPECT_EQ(b2, b);
    std::remove(path.c_str());
}

TEST(ParamsIoTest, MissingFileReturnsFalse)
{
    AlignedVec<f32> a = {1.0f};
    AlignedVec<f32> g = {0.0f};
    EXPECT_FALSE(loadParams("/nonexistent/gssr.bin", {{&a, &g}}));
}

TEST(ParamsIoTest, LengthMismatchThrows)
{
    std::string path =
        (std::filesystem::temp_directory_path() / "gssr_w2.bin")
            .string();
    AlignedVec<f32> a = {1.0f, 2.0f};
    AlignedVec<f32> g(2, 0.0f);
    saveParams(path, {{&a, &g}});
    AlignedVec<f32> wrong(3, 0.0f);
    AlignedVec<f32> wg(3, 0.0f);
    EXPECT_THROW(loadParams(path, {{&wrong, &wg}}), FatalError);
    std::remove(path.c_str());
}

} // namespace
} // namespace gssr
