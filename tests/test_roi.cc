/**
 * @file
 * Unit tests for src/roi — the paper's core contribution: foveal RoI
 * sizing (Sec. IV-B1), depth-map pre-processing (Fig. 8), the
 * Algorithm 1 two-phase search, and the complete RoiDetector
 * including the degenerate-perspective fallback.
 */

#include <gtest/gtest.h>

#include "device/profiles.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/depth_processing.hh"
#include "roi/foveal.hh"
#include "roi/roi_detector.hh"
#include "roi/roi_search.hh"
#include "sr/upscaler.hh"

namespace gssr
{
namespace
{

TEST(FovealTest, DiameterMatchesPaperExample)
{
    // 2 * 30 cm * tan(3 deg) = 3.14 cm = ~1.24 inches (paper: 1.25).
    EXPECT_NEAR(fovealDiameterInches(FovealParams{}), 1.25, 0.02);
}

TEST(FovealTest, MinRoiSizeMatchesS8Example)
{
    // Paper Sec. IV-B1: 1.25 in * 274 PPI = ~343 px on the 2K panel,
    // ~172 px on the 720p LR frame at x2.
    FovealParams params;
    int display_px = minRoiSizePixels(params, 274.0, 1);
    int lr_px = minRoiSizePixels(params, 274.0, 2);
    EXPECT_NEAR(display_px, 343, 5);
    EXPECT_NEAR(lr_px, 172, 3);
}

TEST(FovealTest, MinRoiScalesWithPpi)
{
    FovealParams params;
    EXPECT_GT(minRoiSizePixels(params, 512.0, 2),
              minRoiSizePixels(params, 274.0, 2));
}

TEST(FovealTest, MaxRoiMatches300PixelAnchor)
{
    // Paper Sec. IV-B1: the S8's NPU sustains at most ~300x300 in
    // real time for EDSR x2.
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DnnUpscaler upscaler(std::make_shared<const CompactSrNet>(), 2);
    int max_edge = maxRoiSizePixels(s8.npu, upscaler, 2);
    EXPECT_NEAR(max_edge, 300, 12);
}

TEST(FovealTest, MaxRoiIsMonotoneInDeadline)
{
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DnnUpscaler upscaler(std::make_shared<const CompactSrNet>(), 2);
    int tight = maxRoiSizePixels(s8.npu, upscaler, 2, 8.0);
    int loose = maxRoiSizePixels(s8.npu, upscaler, 2, 33.0);
    EXPECT_LT(tight, loose);
}

TEST(FovealTest, HopelessDeviceReturnsZero)
{
    NpuModel weak;
    weak.macs_per_ms = 1e3; // absurdly slow
    DnnUpscaler upscaler(std::make_shared<const CompactSrNet>(), 2);
    EXPECT_EQ(maxRoiSizePixels(weak, upscaler, 2), 0);
}

TEST(FovealTest, ChooseRoiWindowClampsToFrame)
{
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DnnUpscaler upscaler(std::make_shared<const CompactSrNet>(), 2);
    Size window = chooseRoiWindow(FovealParams{}, s8.display_ppi,
                                  s8.npu, upscaler, 2, {1280, 720});
    EXPECT_LE(window.height, 720);
    EXPECT_GE(window.width, 172); // at least the foveal minimum
}

/** Depth map with a near blob on a far background. */
DepthMap
blobDepthMap(int w, int h, Rect blob, f32 near_depth, f32 far_depth)
{
    DepthMap d(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            d.at(x, y) = blob.contains(x, y) ? near_depth : far_depth;
    return d;
}

TEST(DepthPreprocessTest, BimodalMapSplitsAtTheValley)
{
    DepthMap d = blobDepthMap(64, 64, {10, 10, 16, 16}, 0.2f, 0.9f);
    DepthPreprocessResult r =
        preprocessDepthMap(d, DepthPreprocessConfig{});
    EXPECT_TRUE(r.depth_informative);
    EXPECT_GT(r.foreground_threshold, 0.25f);
    EXPECT_LT(r.foreground_threshold, 0.85f);
    EXPECT_NEAR(r.foreground_fraction, 256.0 / 4096.0, 0.01);
    // The retained (selected-layer) weight lies inside the blob;
    // everything outside it is zeroed.
    f64 blob_weight = 0.0;
    i64 outside_nonzero = 0;
    Rect blob{10, 10, 16, 16};
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            if (blob.contains(x, y))
                blob_weight += r.processed.at(x, y);
            else
                outside_nonzero += r.processed.at(x, y) > 0.0f;
        }
    }
    EXPECT_GT(blob_weight, 0.0);
    EXPECT_EQ(outside_nonzero, 0);
}

TEST(DepthPreprocessTest, UniformDepthIsNotInformative)
{
    // The Sec. VI top-down case: constant distance everywhere.
    DepthMap d(48, 48);
    for (auto &v : d.plane().data())
        v = 0.5f;
    DepthPreprocessResult r =
        preprocessDepthMap(d, DepthPreprocessConfig{});
    EXPECT_FALSE(r.depth_informative);
}

TEST(DepthPreprocessTest, SpatialWeightingFavoursCentre)
{
    // Two identical blobs, one centred, one at the corner: with
    // spatial weighting the centred one accumulates more weight.
    DepthMap d(80, 80);
    for (auto &v : d.plane().data())
        v = 0.9f;
    Rect centre_blob{34, 34, 12, 12};
    Rect corner_blob{2, 2, 12, 12};
    for (int y = 0; y < 80; ++y) {
        for (int x = 0; x < 80; ++x) {
            if (centre_blob.contains(x, y) ||
                corner_blob.contains(x, y)) {
                d.at(x, y) = 0.2f;
            }
        }
    }
    DepthPreprocessConfig config;
    config.enable_layering = false;
    DepthPreprocessResult r = preprocessDepthMap(d, config);
    auto blob_sum = [&](Rect blob) {
        f64 s = 0.0;
        for (int y = blob.y; y < blob.bottom(); ++y)
            for (int x = blob.x; x < blob.right(); ++x)
                s += r.processed.at(x, y);
        return s;
    };
    EXPECT_GT(blob_sum(centre_blob), blob_sum(corner_blob) * 1.2);

    config.enable_spatial_weighting = false;
    DepthPreprocessResult r_off = preprocessDepthMap(d, config);
    f64 ratio_off = 0.0;
    {
        f64 cs = 0.0, ks = 0.0;
        for (int y = 0; y < 80; ++y) {
            for (int x = 0; x < 80; ++x) {
                if (centre_blob.contains(x, y))
                    cs += r_off.processed.at(x, y);
                if (corner_blob.contains(x, y))
                    ks += r_off.processed.at(x, y);
            }
        }
        ratio_off = cs / ks;
    }
    EXPECT_NEAR(ratio_off, 1.0, 0.05); // identical without weighting
}

TEST(DepthPreprocessTest, LayerSelectionKeepsHeaviestLayer)
{
    // A large mid-near region and a tiny very-near region: the big
    // region's layer has the larger total weight and must win.
    DepthMap d(64, 64);
    for (auto &v : d.plane().data())
        v = 0.95f;
    for (int y = 20; y < 50; ++y) // large blob, depth 0.45
        for (int x = 20; x < 50; ++x)
            d.at(x, y) = 0.45f;
    for (int y = 2; y < 6; ++y) // tiny blob, depth 0.05
        for (int x = 2; x < 6; ++x)
            d.at(x, y) = 0.05f;

    DepthPreprocessConfig config;
    config.enable_spatial_weighting = false;
    DepthPreprocessResult r = preprocessDepthMap(d, config);
    ASSERT_TRUE(r.depth_informative);
    ASSERT_FALSE(r.layer_scores.empty());
    // The big blob survives, the tiny nearest blob is discarded.
    EXPECT_GT(r.processed.at(30, 30), 0.0f);
    EXPECT_FLOAT_EQ(r.processed.at(3, 3), 0.0f);
}

TEST(DepthPreprocessTest, OpCountScalesWithArea)
{
    EXPECT_EQ(preprocessOpCount({100, 100}) * 4,
              preprocessOpCount({200, 200}));
}

/** Importance map with a single hot square. */
PlaneF32
hotSpotMap(int w, int h, Rect hot, f32 value = 1.0f)
{
    PlaneF32 map(w, h, 0.0f);
    for (int y = hot.y; y < hot.bottom(); ++y)
        for (int x = hot.x; x < hot.right(); ++x)
            map.at(x, y) = value;
    return map;
}

TEST(RoiSearchTest, FindsPlantedHotSpot)
{
    PlaneF32 map = hotSpotMap(200, 150, {120, 60, 30, 30});
    RoiSearchConfig config;
    config.window_width = 40;
    config.window_height = 40;
    RoiSearchResult r = searchRoi(map, config);
    // The window must cover the full hot spot.
    EXPECT_LE(r.roi.x, 120);
    EXPECT_LE(r.roi.y, 60);
    EXPECT_GE(r.roi.right(), 150);
    EXPECT_GE(r.roi.bottom(), 90);
    EXPECT_NEAR(r.score, 900.0, 1e-6);
}

TEST(RoiSearchTest, TwoPhaseMatchesExhaustiveScore)
{
    // On a smooth map the fine phase must recover (essentially) the
    // exhaustive optimum.
    PlaneF32 map(160, 120, 0.0f);
    for (int y = 0; y < 120; ++y)
        for (int x = 0; x < 160; ++x)
            map.at(x, y) = f32(
                gaussian2d(x, y, 97.0, 41.0, 18.0));
    RoiSearchConfig config;
    config.window_width = 32;
    config.window_height = 32;
    RoiSearchResult two_phase = searchRoi(map, config);
    config.mode = RoiSearchMode::Exhaustive;
    RoiSearchResult exhaustive = searchRoi(map, config);
    EXPECT_GT(two_phase.score, exhaustive.score * 0.99);
    EXPECT_LT(two_phase.positions_evaluated,
              exhaustive.positions_evaluated / 10);
}

TEST(RoiSearchTest, CoarseOnlyEvaluatesFewerPositions)
{
    PlaneF32 map = hotSpotMap(200, 150, {50, 50, 20, 20});
    RoiSearchConfig config;
    config.window_width = 40;
    config.window_height = 40;
    RoiSearchResult two_phase = searchRoi(map, config);
    config.mode = RoiSearchMode::CoarseOnly;
    RoiSearchResult coarse = searchRoi(map, config);
    EXPECT_LT(coarse.positions_evaluated,
              two_phase.positions_evaluated);
}

TEST(RoiSearchTest, TieBreaksTowardsCentre)
{
    // A uniform map: every window has the same score; the paper
    // picks the candidate nearest the frame centre.
    PlaneF32 map(100, 100, 1.0f);
    RoiSearchConfig config;
    config.window_width = 20;
    config.window_height = 20;
    config.fine_stride = 1;
    RoiSearchResult r = searchRoi(map, config);
    f64 cx = r.roi.x + r.roi.width * 0.5;
    f64 cy = r.roi.y + r.roi.height * 0.5;
    EXPECT_NEAR(cx, 50.0, 6.0);
    EXPECT_NEAR(cy, 50.0, 6.0);
}

TEST(RoiSearchTest, WindowLargerThanMapThrows)
{
    PlaneF32 map(32, 32, 0.0f);
    RoiSearchConfig config;
    config.window_width = 64;
    config.window_height = 64;
    EXPECT_THROW(searchRoi(map, config), PanicError);
}

TEST(RoiSearchTest, WindowEqualToMapIsTheOnlyCandidate)
{
    PlaneF32 map(32, 32, 0.5f);
    RoiSearchConfig config;
    config.window_width = 32;
    config.window_height = 32;
    RoiSearchResult r = searchRoi(map, config);
    EXPECT_EQ(r.roi, (Rect{0, 0, 32, 32}));
}

TEST(RoiSearchTest, OpCountReflectsSearchMode)
{
    RoiSearchConfig config;
    config.window_width = 40;
    config.window_height = 40;
    i64 two_phase = roiSearchOpCount({320, 180}, config);
    config.mode = RoiSearchMode::Exhaustive;
    i64 exhaustive = roiSearchOpCount({320, 180}, config);
    EXPECT_GT(exhaustive, two_phase);
}

class RoiDetectorTest : public ::testing::Test
{
  protected:
    ServerProfile server_ = ServerProfile::gamingWorkstation();
};

TEST_F(RoiDetectorTest, DetectsNearObjectOnRenderedFrame)
{
    // Render a real game frame and confirm the detector lands on a
    // region containing near geometry.
    GameWorld world(GameId::G1_MetroExodus, 3);
    RenderOutput frame =
        renderScene(world.sceneAt(0.6), {320, 180});
    RoiDetector detector(server_);
    RoiDetection d = detector.detect(frame.depth, {75, 75});
    ASSERT_TRUE(d.depth_guided);
    // Mean depth inside the RoI must be lower (nearer) than the
    // frame mean — the detector found foreground.
    f64 roi_mean = 0.0;
    for (int y = d.roi.y; y < d.roi.bottom(); ++y)
        for (int x = d.roi.x; x < d.roi.right(); ++x)
            roi_mean += frame.depth.at(x, y);
    roi_mean /= f64(d.roi.area());
    f64 frame_mean = 0.0;
    for (f32 v : frame.depth.plane().data())
        frame_mean += v;
    frame_mean /= f64(frame.depth.plane().sampleCount());
    EXPECT_LT(roi_mean, frame_mean);
    EXPECT_GT(d.server_gpu_ms, 0.0);
}

TEST_F(RoiDetectorTest, RoiAlwaysInsideFrame)
{
    for (GameId id : {GameId::G2_FarCry5, GameId::G5_GrandTheftAutoV,
                      GameId::G10_ForzaHorizon5}) {
        GameWorld world(id, 4);
        RenderOutput frame =
            renderScene(world.sceneAt(1.0), {320, 180});
        RoiDetector detector(server_);
        RoiDetection d = detector.detect(frame.depth, {75, 75});
        EXPECT_TRUE((Rect{0, 0, 320, 180}.contains(d.roi)))
            << gameInfo(id).short_name;
        EXPECT_EQ(d.roi.width, 75);
        EXPECT_EQ(d.roi.height, 75);
    }
}

TEST_F(RoiDetectorTest, TopDownFallsBackToCentre)
{
    // Sec. VI: top-down views have near-uniform depth; the detector
    // must flag the fallback and return the centred window.
    GameWorld world(GameId::TopDownStrategy, 3);
    RenderOutput frame =
        renderScene(world.sceneAt(0.5), {320, 180});
    RoiDetector detector(server_);
    RoiDetection d = detector.detect(frame.depth, {75, 75});
    EXPECT_FALSE(d.depth_guided);
    EXPECT_EQ(d.roi.x, (320 - 75) / 2);
    EXPECT_EQ(d.roi.y, (180 - 75) / 2);
}

TEST_F(RoiDetectorTest, DetectionIsFastEnoughForRealTime)
{
    // The charged server-GPU time must be a small fraction of the
    // 16.66 ms frame budget (the paper runs it inside the render
    // pipeline).
    GameWorld world(GameId::G3_Witcher3, 3);
    RenderOutput frame =
        renderScene(world.sceneAt(0.4), {1280, 720});
    RoiDetector detector(server_);
    RoiDetection d = detector.detect(frame.depth, {300, 300});
    EXPECT_LT(d.server_gpu_ms, 2.0);
}

TEST_F(RoiDetectorTest, WindowLargerThanFrameThrows)
{
    RoiDetector detector(server_);
    DepthMap d(64, 64);
    EXPECT_THROW(detector.detect(d, {128, 128}), PanicError);
}

} // namespace
} // namespace gssr
