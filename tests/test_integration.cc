/**
 * @file
 * Integration tests: cross-module end-to-end properties — the
 * bandwidth reduction of streaming LR+RoI instead of HR frames, the
 * quality ordering between designs over whole GOPs, energy ordering,
 * and whole-session determinism. These exercise the same code paths
 * as the benchmark harness, at reduced scale.
 */

#include <gtest/gtest.h>

#include "metrics/psnr.hh"
#include "pipeline/session.hh"
#include "render/rasterizer.hh"
#include "sr/trainer.hh"

namespace gssr
{
namespace
{

std::shared_ptr<const CompactSrNet>
sharedNet()
{
    static std::shared_ptr<const CompactSrNet> net = [] {
        TrainerConfig config;
        config.iterations = 200;
        return std::make_shared<const CompactSrNet>(
            trainedSrNet("", config));
    }();
    return net;
}

SessionConfig
baseConfig(DesignKind design, bool pixels)
{
    SessionConfig config;
    config.game = GameId::G3_Witcher3;
    config.frames = 8;
    config.lr_size = {192, 96};
    config.codec.gop_size = 8;
    config.design = design;
    config.compute_pixels = pixels;
    if (pixels)
        config.sr_net = sharedNet();
    return config;
}

TEST(IntegrationTest, LowResStreamUsesFarLessBandwidthThanHighRes)
{
    // Sec. IV-B2: streaming 720p + RoI metadata cuts bandwidth ~66 %
    // vs. streaming the 2K frames. We verify the compression ratio
    // between the two encodes of the same content.
    GameWorld world(GameId::G5_GrandTheftAutoV, 11);
    Size lr{256, 128};
    Size hr{512, 256};
    CodecConfig codec;
    codec.gop_size = 4;
    GopEncoder lr_encoder(codec, lr);
    GopEncoder hr_encoder(codec, hr);
    size_t lr_bytes = 0, hr_bytes = 0;
    for (int i = 0; i < 4; ++i) {
        Scene scene = world.sceneAt(f64(i) / 60.0);
        lr_bytes +=
            lr_encoder.encode(renderScene(scene, lr).color)
                .sizeBytes();
        hr_bytes +=
            hr_encoder.encode(renderScene(scene, hr).color)
                .sizeBytes();
    }
    // RoI metadata is 4 small integers per frame — negligible.
    f64 reduction = 1.0 - f64(lr_bytes) / f64(hr_bytes);
    EXPECT_GT(reduction, 0.5);
}

TEST(IntegrationTest, GssrBeatsNemoOnMeanGopQuality)
{
    // Fig. 14a at reduced scale: over a full GOP, the RoI design's
    // mean PSNR exceeds NEMO's (whose non-reference frames drift).
    SessionConfig ours_config =
        baseConfig(DesignKind::GameStreamSR, true);
    ours_config.measure_quality = true;
    SessionConfig nemo_config = baseConfig(DesignKind::Nemo, true);
    nemo_config.measure_quality = true;

    SessionResult ours = runSession(ours_config);
    SessionResult nemo = runSession(nemo_config);
    EXPECT_GT(ours.meanPsnrDb(), nemo.meanPsnrDb());
}

TEST(IntegrationTest, GssrQualityIsStableWithinGop)
{
    SessionConfig config = baseConfig(DesignKind::GameStreamSR, true);
    config.measure_quality = true;
    SessionResult result = runSession(config);
    ASSERT_GE(result.quality.size(), 4u);
    f64 min_psnr = 1e9, max_psnr = -1e9;
    for (const auto &q : result.quality) {
        min_psnr = std::min(min_psnr, q.psnr_db);
        max_psnr = std::max(max_psnr, q.psnr_db);
    }
    EXPECT_LT(max_psnr - min_psnr, 4.0);
}

TEST(IntegrationTest, ClientEnergyOrderingAcrossDesigns)
{
    // Per-frame client processing energy: NEMO > GameStreamSR >
    // SR-integrated decoder (Sec. VI).
    f64 energy[3] = {};
    DesignKind designs[3] = {DesignKind::Nemo,
                             DesignKind::GameStreamSR,
                             DesignKind::SrDecoder};
    for (int i = 0; i < 3; ++i) {
        SessionConfig config = baseConfig(designs[i], false);
        config.lr_size = {1280, 720};
        config.frames = 8;
        config.codec.gop_size = 8;
        energy[i] = runSession(config).meanClientEnergyMj();
    }
    EXPECT_GT(energy[0], energy[1]);
    EXPECT_GT(energy[1], energy[2]);
}

TEST(IntegrationTest, DepthRoiIsFreeWhereEyeTrackingCostsWatts)
{
    // Sec. III-A: camera-based eye tracking costs +2.8 W
    // continuously; the depth-guided approach costs the client
    // nothing (RoI detection runs on the server).
    DeviceProfile pixel = DeviceProfile::pixel7Pro();
    f64 frame_ms = 1000.0 / 60.0;
    f64 tracking_mj_per_frame =
        pixel.camera_eye_tracking_w * frame_ms;
    // That is ~46 mJ/frame — larger than our whole upscale budget.
    SessionConfig config =
        baseConfig(DesignKind::GameStreamSR, false);
    config.lr_size = {1280, 720};
    config.device = pixel;
    SessionResult result = runSession(config);
    f64 upscale_mj =
        result.traces[0].stageEnergyMj(Stage::Upscale);
    EXPECT_GT(tracking_mj_per_frame, upscale_mj);
}

TEST(IntegrationTest, MtpWithinCloudGamingBudget)
{
    // Fig. 10b/c at reduced content scale but real device/network
    // models: our MTP stays under the 150 ms cloud-gaming budget
    // for both frame types, NEMO's reference frames blow through it.
    SessionConfig ours_config =
        baseConfig(DesignKind::GameStreamSR, false);
    ours_config.lr_size = {1280, 720};
    SessionConfig nemo_config = baseConfig(DesignKind::Nemo, false);
    nemo_config.lr_size = {1280, 720};

    SessionResult ours = runSession(ours_config);
    SessionResult nemo = runSession(nemo_config);
    EXPECT_LT(ours.meanMtpMs(FrameType::Reference), 150.0);
    EXPECT_LT(ours.meanMtpMs(FrameType::NonReference), 150.0);
    EXPECT_GT(nemo.meanMtpMs(FrameType::Reference), 150.0);
}

TEST(IntegrationTest, FullSessionBitwiseDeterministic)
{
    SessionConfig config = baseConfig(DesignKind::GameStreamSR, true);
    config.measure_quality = true;
    SessionResult a = runSession(config);
    SessionResult b = runSession(config);
    ASSERT_EQ(a.quality.size(), b.quality.size());
    for (size_t i = 0; i < a.quality.size(); ++i)
        EXPECT_DOUBLE_EQ(a.quality[i].psnr_db, b.quality[i].psnr_db);
    for (size_t i = 0; i < a.traces.size(); ++i)
        EXPECT_EQ(a.traces[i].encoded_bytes, b.traces[i].encoded_bytes);
}

TEST(IntegrationTest, DegeneratePerspectiveStillStreams)
{
    // Sec. VI: top-down games fall back to the centre RoI but the
    // pipeline keeps working end to end.
    SessionConfig config = baseConfig(DesignKind::GameStreamSR, true);
    config.game = GameId::TopDownStrategy;
    config.measure_quality = true;
    SessionResult result = runSession(config);
    EXPECT_EQ(result.traces.size(), 8u);
    EXPECT_GT(result.meanPsnrDb(), 18.0);
}

} // namespace
} // namespace gssr
