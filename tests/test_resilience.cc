/**
 * @file
 * Tests for the loss-resilience subsystem: the client reference
 * tracker, NACK feedback path, concealment engine, forced intra
 * refresh, the AIMD bitrate backoff, and the end-to-end recovery
 * behaviour of a session streamed through scripted fault scenarios.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "codec/codec.hh"
#include "codec/rate_control.hh"
#include "net/fault.hh"
#include "pipeline/resilience.hh"
#include "pipeline/session.hh"
#include "sr/trainer.hh"

namespace gssr
{
namespace
{

/** Small trained net shared by the pixel tests (as in test_pipeline). */
std::shared_ptr<const CompactSrNet>
testNet()
{
    static std::shared_ptr<const CompactSrNet> net = [] {
        TrainerConfig config;
        config.iterations = 150;
        return std::make_shared<const CompactSrNet>(
            trainedSrNet("", config));
    }();
    return net;
}

/**
 * Accounting-only session at a tiny resolution. Random packet loss
 * is zeroed so scripted fault scenarios are the only loss source and
 * the tests can assert exact drop counts.
 */
SessionConfig
accountingConfig(int frames, int gop)
{
    SessionConfig config;
    config.game = GameId::G3_Witcher3;
    config.frames = frames;
    config.lr_size = {192, 96};
    config.codec.gop_size = gop;
    config.compute_pixels = false;
    config.channel.packet_loss = 0.0;
    return config;
}

TEST(ReferenceTrackerTest, LossStallsChainUntilIntra)
{
    ReferenceTracker t;
    EXPECT_TRUE(t.chainValid());
    EXPECT_EQ(t.onFrameArrived(FrameType::Reference),
              ReferenceTracker::Action::Decode);
    EXPECT_EQ(t.onFrameArrived(FrameType::NonReference),
              ReferenceTracker::Action::Decode);
    t.onFrameLost();
    EXPECT_FALSE(t.chainValid());
    // Every delta is stale until the next intra re-seeds the chain.
    EXPECT_EQ(t.onFrameArrived(FrameType::NonReference),
              ReferenceTracker::Action::Discard);
    EXPECT_EQ(t.onFrameArrived(FrameType::NonReference),
              ReferenceTracker::Action::Discard);
    EXPECT_EQ(t.onFrameArrived(FrameType::Reference),
              ReferenceTracker::Action::Decode);
    EXPECT_TRUE(t.chainValid());
    EXPECT_EQ(t.onFrameArrived(FrameType::NonReference),
              ReferenceTracker::Action::Decode);
}

TEST(FeedbackPathTest, NacksArriveAfterTheirDelay)
{
    FeedbackPath path;
    path.sendNack(7, 100.0, 10.0);  // arrives at 110
    path.sendNack(9, 120.0, 5.0);   // arrives at 125
    EXPECT_EQ(path.sentCount(), 2);
    EXPECT_EQ(path.inFlight(), 2u);

    EXPECT_TRUE(path.drainArrived(105.0).empty());
    std::vector<NackPacket> first = path.drainArrived(115.0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].lost_frame, 7);
    EXPECT_DOUBLE_EQ(first[0].arrive_ms, 110.0);

    std::vector<NackPacket> second = path.drainArrived(1000.0);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].lost_frame, 9);
    EXPECT_EQ(path.inFlight(), 0u);
}

TEST(GopEncoderTest, ForcedIntraRefreshRealignsTheGop)
{
    CodecConfig codec;
    codec.gop_size = 10;
    GopEncoder encoder(codec, {64, 32});
    ColorImage frame(64, 32);
    frame.fill(90, 120, 60);

    EXPECT_EQ(encoder.encode(frame).type, FrameType::Reference);
    EXPECT_EQ(encoder.encode(frame).type, FrameType::NonReference);
    EXPECT_EQ(encoder.encode(frame).type, FrameType::NonReference);

    encoder.forceIntraRefresh();
    EXPECT_EQ(encoder.nextFrameType(), FrameType::Reference);
    EncodedFrame intra = encoder.encode(frame);
    EXPECT_EQ(intra.type, FrameType::Reference);
    // The GOP is realigned: gop_size - 1 deltas follow.
    for (int i = 0; i < codec.gop_size - 1; ++i)
        EXPECT_EQ(encoder.encode(frame).type, FrameType::NonReference);
    EXPECT_EQ(encoder.encode(frame).type, FrameType::Reference);
}

TEST(ConcealerTest, HoldRepeatsTheLastGoodFrame)
{
    Concealer concealer(ConcealmentMode::Hold);
    EXPECT_FALSE(concealer.hasReference());

    // No reference yet: conceals to black.
    ColorImage black = concealer.conceal({32, 16});
    EXPECT_EQ(black.size(), (Size{32, 16}));
    EXPECT_EQ(black.r().at(5, 5), 0);

    ColorImage good(32, 16);
    good.fill(10, 200, 30);
    concealer.onGoodFrame(good);
    EXPECT_TRUE(concealer.hasReference());
    ColorImage held = concealer.conceal({32, 16});
    EXPECT_TRUE(held == good);
}

TEST(ConcealerTest, GlobalShiftEstimateRecoversKnownMotion)
{
    // A bright block moving +16 px right between two frames.
    auto frameWithBlockAt = [](int x0) {
        ColorImage img(128, 96);
        for (int y = 40; y < 56; ++y)
            for (int x = x0; x < x0 + 16; ++x)
                img.setPixel(x, y, 250, 250, 250);
        return img;
    };
    ColorImage a = frameWithBlockAt(32);
    ColorImage b = frameWithBlockAt(48);
    int dx = 0, dy = 0;
    estimateGlobalShift(a, b, dx, dy);
    EXPECT_EQ(dx, 16);
    EXPECT_EQ(dy, 0);
}

TEST(ConcealerTest, MotionExtrapolationKeepsTracking)
{
    auto frameWithBlockAt = [](int x0) {
        ColorImage img(128, 96);
        for (int y = 40; y < 56; ++y)
            for (int x = x0; x < x0 + 16; ++x)
                img.setPixel(x, y, 250, 250, 250);
        return img;
    };
    Concealer concealer(ConcealmentMode::MotionExtrapolate);
    concealer.onGoodFrame(frameWithBlockAt(32));
    concealer.onGoodFrame(frameWithBlockAt(40));

    // Extrapolating the +8 px/frame pan: the block should land at
    // 48, then 56.
    ColorImage c1 = concealer.conceal({128, 96});
    EXPECT_EQ(c1.r().at(48 + 8, 48), 250);
    EXPECT_EQ(c1.r().at(40, 48), 0);
    ColorImage c2 = concealer.conceal({128, 96});
    EXPECT_EQ(c2.r().at(56 + 8, 48), 250);
}

TEST(AimdTest, BackoffAndRecovery)
{
    AimdConfig config;
    config.min_mbps = 1.0;
    config.max_mbps = 50.0;
    config.increase_mbps_per_s = 10.0;
    config.decrease_factor = 0.5;
    config.backoff_hold_ms = 100.0;
    AimdController aimd(config, 40.0);

    EXPECT_DOUBLE_EQ(aimd.targetMbps(), 40.0);
    EXPECT_TRUE(aimd.onCongestion(0.0));
    EXPECT_DOUBLE_EQ(aimd.targetMbps(), 20.0);
    // Refractory: a second loss in the same episode is absorbed.
    EXPECT_FALSE(aimd.onCongestion(50.0));
    EXPECT_DOUBLE_EQ(aimd.targetMbps(), 20.0);
    EXPECT_EQ(aimd.backoffCount(), 1);

    // Additive recovery: +10 Mbps/s once the hold expires.
    aimd.onDelivered(200.0);
    aimd.onDelivered(1200.0);
    EXPECT_NEAR(aimd.targetMbps(), 30.0, 1e-9);

    // Bounds are respected.
    for (int i = 0; i < 20; ++i)
        aimd.onCongestion(2000.0 + i * 200.0);
    EXPECT_DOUBLE_EQ(aimd.targetMbps(), 1.0);
}

TEST(ResilienceSessionTest, NackTriggersIntraRefreshRoundTrip)
{
    SessionConfig config = accountingConfig(20, 30);
    config.fault_scenario = FaultScenario::lossBurst(5, 1);
    SessionResult result = runSession(config);
    const ResilienceStats &stats = result.resilience;

    EXPECT_EQ(stats.frames_dropped, 1);
    EXPECT_GE(stats.nacks_sent, 1);
    EXPECT_EQ(stats.intra_refreshes, 1);
    EXPECT_TRUE(result.traces[5].dropped);
    EXPECT_TRUE(result.traces[5].hasEvent(RecoveryEvent::FrameDropped));

    // The forced intra lands ~NACK RTT after the loss; with a 12 ms
    // RTT at 60 FPS that is within a handful of frames.
    ASSERT_EQ(stats.recovery_latency_ms.count(), 1);
    EXPECT_LE(stats.recovery_latency_ms.max(), 5.0 * 1000.0 / 60.0);
    EXPECT_LE(stats.longest_stale_run, 4);

    // The refresh is observable in the traces.
    bool saw_refresh = false;
    for (const auto &t : result.traces)
        saw_refresh |= t.hasEvent(RecoveryEvent::IntraRefresh);
    EXPECT_TRUE(saw_refresh);
}

TEST(ResilienceSessionTest, NoDeltaIsEverDecodedAgainstLostState)
{
    SessionConfig config = accountingConfig(60, 20);
    config.channel = ChannelConfig::wifiBursty();
    config.channel_seed = 1234;
    config.fault_scenario = FaultScenario::mixed(8, 12);
    SessionResult result = runSession(config);

    // Replay the reference chain over the recorded traces: after any
    // drop, every frame must be concealed until a delivered intra.
    bool chain_valid = true;
    i64 decoded = 0, concealed = 0;
    for (const auto &t : result.traces) {
        if (t.dropped) {
            chain_valid = false;
            EXPECT_TRUE(t.concealed);
        } else if (t.type == FrameType::Reference) {
            chain_valid = true;
            EXPECT_FALSE(t.concealed);
        } else {
            // Delivered delta: decoded iff the chain was intact.
            EXPECT_EQ(t.concealed, !chain_valid);
            EXPECT_EQ(t.discarded, !chain_valid);
        }
        decoded += !t.concealed;
        concealed += t.concealed;
    }
    EXPECT_GT(concealed, 0);
    EXPECT_GT(decoded, 0);

    const ResilienceStats &stats = result.resilience;
    EXPECT_EQ(stats.frames_concealed, concealed);
    EXPECT_EQ(stats.frames_concealed,
              stats.frames_dropped + stats.frames_discarded);
    EXPECT_EQ(stats.frames_delivered + stats.frames_dropped,
              i64(result.traces.size()));
}

TEST(ResilienceSessionTest, WithoutNackStaleRunsLastUntilGopBoundary)
{
    SessionConfig with = accountingConfig(40, 40);
    with.fault_scenario = FaultScenario::lossBurst(4, 1);
    SessionConfig without = with;
    without.resilience.nack = false;

    SessionResult nack_on = runSession(with);
    SessionResult nack_off = runSession(without);

    EXPECT_EQ(nack_off.resilience.intra_refreshes, 0);
    EXPECT_EQ(nack_off.resilience.nacks_sent, 0);
    // Without recovery the only intra is frame 0: the session never
    // heals within its single GOP.
    EXPECT_EQ(nack_off.resilience.longest_stale_run, 40 - 4);
    EXPECT_LT(nack_on.resilience.longest_stale_run, 5);
}

TEST(ResilienceSessionTest, ConcealedFramesCarryConcealCost)
{
    SessionConfig config = accountingConfig(12, 30);
    config.fault_scenario = FaultScenario::lossBurst(3, 1);
    SessionResult result = runSession(config);

    const FrameTrace &lost = result.traces[3];
    ASSERT_TRUE(lost.concealed);
    EXPECT_GT(lost.stageLatencyMs(Stage::Conceal), 0.0);
    EXPECT_GT(lost.stageLatencyMs(Stage::Display), 0.0);
    // No decode/upscale work is charged for a frame never decoded.
    EXPECT_DOUBLE_EQ(lost.stageLatencyMs(Stage::Decode), 0.0);
    EXPECT_DOUBLE_EQ(lost.stageLatencyMs(Stage::Upscale), 0.0);
}

TEST(ResilienceSessionTest, ConcealedQualityDipsAndRecovers)
{
    SessionConfig config;
    config.game = GameId::G3_Witcher3;
    config.frames = 16;
    config.lr_size = {192, 96};
    config.codec.gop_size = 16;
    config.design = DesignKind::GameStreamSR;
    config.compute_pixels = true;
    config.sr_net = testNet();
    config.measure_quality = true;
    config.fault_scenario = FaultScenario::lossBurst(6, 2);

    SessionResult result = runSession(config);
    const ResilienceStats &stats = result.resilience;
    ASSERT_GT(stats.frames_concealed, 0);
    ASSERT_GT(stats.concealed_psnr_db.count(), 0);
    ASSERT_GT(stats.delivered_psnr_db.count(), 0);

    // Concealed frames (held stills of a moving scene) measure
    // worse than delivered frames — the honest Fig. 13-style dip.
    EXPECT_LT(stats.concealed_psnr_db.mean(),
              stats.delivered_psnr_db.mean());

    // And the dip recovers: the last measured frame is delivered
    // and close to the delivered mean.
    const FrameQuality &last = result.quality.back();
    EXPECT_FALSE(last.concealed);
    EXPECT_GT(last.psnr_db, stats.concealed_psnr_db.mean());

    // Concealed samples are flagged for downstream tooling.
    bool flagged = false;
    for (const auto &q : result.quality)
        flagged |= q.concealed;
    EXPECT_TRUE(flagged);
}

TEST(ResilienceSessionTest, AimdConvergesBelowNoBackoffDropRate)
{
    // A stream whose initial target overloads a 3 Mbps channel:
    // without backoff it keeps congesting; with AIMD the offered
    // load converges under the knee.
    ChannelConfig congested = ChannelConfig::wifi();
    congested.bandwidth_mbps = 3.0;
    congested.bandwidth_jitter = 0.10;
    congested.packet_loss = 0.0;

    SessionConfig config = accountingConfig(180, 6);
    config.channel = congested;
    config.target_bitrate_mbps = 6.0;
    config.resilience.aimd = true;
    config.resilience.aimd_config.min_mbps = 0.5;
    config.resilience.aimd_config.increase_mbps_per_s = 0.5;

    SessionConfig no_backoff = config;
    no_backoff.resilience.aimd = false;

    SessionResult with = runSession(config);
    SessionResult without = runSession(no_backoff);

    EXPECT_GT(with.resilience.aimd_backoffs, 0);
    EXPECT_LT(with.resilience.frames_dropped,
              without.resilience.frames_dropped);

    // Steady state: the tail of the AIMD session is mostly clean.
    i64 tail_drops = 0;
    for (size_t i = 120; i < with.traces.size(); ++i)
        tail_drops += with.traces[i].dropped;
    i64 tail_drops_baseline = 0;
    for (size_t i = 120; i < without.traces.size(); ++i)
        tail_drops_baseline += without.traces[i].dropped;
    EXPECT_LT(tail_drops, tail_drops_baseline);
}

TEST(ResilienceSessionTest, FaultSessionIsDeterministic)
{
    SessionConfig config = accountingConfig(40, 10);
    config.channel = ChannelConfig::wifiBursty();
    config.channel_seed = 77;
    config.fault_scenario = FaultScenario::mixed(6, 10);
    SessionResult a = runSession(config);
    SessionResult b = runSession(config);
    ASSERT_EQ(a.traces.size(), b.traces.size());
    for (size_t i = 0; i < a.traces.size(); ++i) {
        EXPECT_EQ(a.traces[i].dropped, b.traces[i].dropped);
        EXPECT_EQ(a.traces[i].concealed, b.traces[i].concealed);
        EXPECT_EQ(a.traces[i].events.size(), b.traces[i].events.size());
        EXPECT_DOUBLE_EQ(a.traces[i].mtpLatencyMs(),
                         b.traces[i].mtpLatencyMs());
    }
    EXPECT_EQ(a.resilience.nacks_sent, b.resilience.nacks_sent);
    EXPECT_EQ(a.resilience.intra_refreshes,
              b.resilience.intra_refreshes);
}

/** Packet-granularity bursty channel shared by the wire-mode tests. */
SessionConfig
packetModeConfig(int frames)
{
    SessionConfig config = accountingConfig(frames, 30);
    config.channel = ChannelConfig::wifiBursty();
    config.channel.granularity = LossGranularity::Packet;
    config.channel.packet_loss = 5e-3; // singles for FEC to mop up
    config.channel_seed = 1234;
    return config;
}

TEST(PacketModeTest, FecRecoversLossesNackOnlyPays)
{
    SessionConfig nack_only = packetModeConfig(400);
    SessionConfig with_fec = nack_only;
    with_fec.resilience.fec_overhead = 0.25;

    SessionResult reactive = runSession(nack_only);
    SessionResult proactive = runSession(with_fec);

    // The channel replay is seed-identical; parity is the only
    // difference. Without it every lossy frame drops; with it most
    // packet losses repair in zero RTT.
    EXPECT_GT(reactive.resilience.frames_dropped, 0);
    EXPECT_EQ(reactive.resilience.frames_fec_recovered, 0);
    EXPECT_GT(proactive.resilience.frames_fec_recovered, 0);
    EXPECT_LT(proactive.resilience.frames_dropped,
              reactive.resilience.frames_dropped);
    EXPECT_GT(proactive.resilience.frames_delivered,
              reactive.resilience.frames_delivered);
    // Zero-RTT: recovered frames never enter the NACK -> intra
    // round trip, so the reactive path is exercised less.
    EXPECT_LE(proactive.resilience.nacks_sent,
              reactive.resilience.nacks_sent);
    EXPECT_GT(proactive.resilience.packets_sent,
              reactive.resilience.packets_sent); // parity packets
    EXPECT_GT(reactive.resilience.packets_lost, 0);
}

TEST(PacketModeTest, SlicedStreamConcealsPartialFrames)
{
    SessionConfig config = packetModeConfig(400);
    config.codec.slices = 3;
    // Longer bursts than parity-free frames can absorb whole.
    config.channel.ge_p_enter_burst = 0.004;
    config.channel.ge_p_exit_burst = 0.3;

    SessionResult result = runSession(config);
    EXPECT_GT(result.resilience.frames_partial, 0);
    EXPECT_GT(result.resilience.slices_concealed, 0);
    // Partial frames stay in the delivered population: the reference
    // chain survives, bands are concealed instead of whole frames.
    i64 partial_traces = 0;
    for (const auto &t : result.traces) {
        if (t.hasEvent(RecoveryEvent::SliceConcealed)) {
            partial_traces += 1;
            EXPECT_FALSE(t.dropped);
        }
    }
    EXPECT_EQ(partial_traces, result.resilience.frames_partial);
}

TEST(PacketModeTest, PixelSessionDecodesPartialFramesEndToEnd)
{
    SessionConfig config;
    config.frames = 40;
    config.lr_size = {64, 96};
    config.codec.gop_size = 20;
    config.codec.slices = 3;
    config.compute_pixels = true;
    config.sr_net = testNet();
    config.channel = ChannelConfig::wifiBursty();
    config.channel.granularity = LossGranularity::Packet;
    config.channel.packet_loss = 0.05; // harsh: force partials
    config.channel.mtu_bytes = 200;    // many packets per frame
    config.channel_seed = 9;

    SessionResult result = runSession(config);
    ASSERT_EQ(result.traces.size(), 40u);
    // Under this loss rate the session must exercise the partial
    // path at least once, and every frame still produced output.
    EXPECT_GT(result.resilience.frames_partial +
                  result.resilience.frames_dropped,
              0);
    SessionResult replay = runSession(config);
    EXPECT_EQ(sessionFingerprint(result), sessionFingerprint(replay));
}

TEST(PacketModeTest, PacketSessionIsDeterministic)
{
    SessionConfig config = packetModeConfig(120);
    config.resilience.fec_overhead = 0.1;
    config.codec.slices = 4;
    SessionResult a = runSession(config);
    SessionResult b = runSession(config);
    EXPECT_EQ(sessionFingerprint(a), sessionFingerprint(b));
    EXPECT_EQ(a.resilience.packets_lost, b.resilience.packets_lost);
    EXPECT_EQ(a.resilience.frames_fec_recovered,
              b.resilience.frames_fec_recovered);
    EXPECT_EQ(a.resilience.slices_concealed,
              b.resilience.slices_concealed);
}

} // namespace
} // namespace gssr
