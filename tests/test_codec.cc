/**
 * @file
 * Unit tests for src/codec: bitstream primitives, the 8x8 DCT and
 * quantizer, plane transform coding, block motion estimation /
 * compensation, and the full GOP encoder/decoder including the
 * hardware/software decoder bindings.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codec/bitstream.hh"
#include "codec/codec.hh"
#include "codec/dct.hh"
#include "codec/motion.hh"
#include "codec/plane_coder.hh"
#include "common/mathutil.hh"
#include "common/rng.hh"
#include "metrics/psnr.hh"

namespace gssr
{
namespace
{

TEST(BitstreamTest, ZigzagMapping)
{
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    for (i64 v : {0L, 1L, -1L, 12345L, -987654321L,
                  i64(1) << 40, -(i64(1) << 40)}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
}

TEST(BitstreamTest, VarintRoundTrip)
{
    ByteWriter writer;
    std::vector<u64> values = {0, 1, 127, 128, 300, 1u << 20,
                               u64(1) << 50};
    for (u64 v : values)
        writer.putVarint(v);
    std::vector<u8> bytes = writer.take();
    ByteReader reader(bytes);
    for (u64 v : values)
        EXPECT_EQ(reader.getVarint(), v);
    EXPECT_TRUE(reader.atEnd());
}

TEST(BitstreamTest, SignedVarintRoundTrip)
{
    ByteWriter writer;
    std::vector<i64> values = {0, -1, 1, -64, 64, -100000, 100000};
    for (i64 v : values)
        writer.putSignedVarint(v);
    std::vector<u8> bytes = writer.take();
    ByteReader reader(bytes);
    for (i64 v : values)
        EXPECT_EQ(reader.getSignedVarint(), v);
}

TEST(BitstreamTest, SmallVarintsUseOneByte)
{
    ByteWriter writer;
    writer.putVarint(127);
    EXPECT_EQ(writer.size(), 1u);
    writer.putVarint(128);
    EXPECT_EQ(writer.size(), 3u);
}

TEST(BitstreamTest, TruncatedStreamThrows)
{
    std::vector<u8> bytes = {0x80}; // continuation without end
    ByteReader reader(bytes);
    EXPECT_THROW(reader.getVarint(), FatalError);
}

TEST(BitstreamTest, U16RoundTrip)
{
    ByteWriter writer;
    writer.putU16(0xabcd);
    std::vector<u8> bytes = writer.take();
    ByteReader reader(bytes);
    EXPECT_EQ(reader.getU16(), 0xabcd);
}

TEST(DctTest, RoundTripIsNearExact)
{
    Rng rng(1);
    Block8x8 block{};
    for (auto &v : block)
        v = f32(rng.uniform(-128.0, 128.0));
    Block8x8 back = inverseDct8x8(forwardDct8x8(block));
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(back[size_t(i)], block[size_t(i)], 1e-3);
}

TEST(DctTest, ConstantBlockHasOnlyDcCoefficient)
{
    Block8x8 block{};
    block.fill(100.0f);
    Block8x8 coeffs = forwardDct8x8(block);
    // Orthonormal DCT: DC = 8 * mean.
    EXPECT_NEAR(coeffs[0], 800.0f, 1e-2);
    for (int i = 1; i < 64; ++i)
        EXPECT_NEAR(coeffs[size_t(i)], 0.0f, 1e-3);
}

TEST(DctTest, ParsevalEnergyPreserved)
{
    Rng rng(2);
    Block8x8 block{};
    for (auto &v : block)
        v = f32(rng.uniform(-100.0, 100.0));
    Block8x8 coeffs = forwardDct8x8(block);
    f64 e_spatial = 0.0, e_freq = 0.0;
    for (int i = 0; i < 64; ++i) {
        e_spatial += f64(block[size_t(i)]) * block[size_t(i)];
        e_freq += f64(coeffs[size_t(i)]) * coeffs[size_t(i)];
    }
    EXPECT_NEAR(e_freq / e_spatial, 1.0, 1e-4);
}

TEST(DctTest, ZigzagOrderIsAPermutation)
{
    const auto &order = zigzagOrder();
    std::array<bool, 64> seen{};
    for (int idx : order) {
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, 64);
        EXPECT_FALSE(seen[size_t(idx)]);
        seen[size_t(idx)] = true;
    }
    // Standard zigzag prefix.
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 8);
    EXPECT_EQ(order[63], 63);
}

TEST(DctTest, QuantizeDequantizeBoundsError)
{
    Rng rng(3);
    Block8x8 coeffs{};
    for (auto &v : coeffs)
        v = f32(rng.uniform(-200.0, 200.0));
    int qp = 8;
    Block8x8 back = dequantize(quantize(coeffs, qp), qp);
    for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
            f32 step = f32(qp) * (1.0f + 0.14f * f32(u + v));
            EXPECT_LE(std::abs(back[size_t(v * 8 + u)] -
                               coeffs[size_t(v * 8 + u)]),
                      step * 0.5f + 1e-3f);
        }
    }
}

TEST(DctTest, LargerQpCoarser)
{
    Block8x8 coeffs{};
    coeffs[5] = 40.0f;
    EXPECT_NE(quantize(coeffs, 2)[5], 0);
    EXPECT_EQ(quantize(coeffs, 100)[5], 0);
}

PlaneF32
randomPlane(int w, int h, u64 seed, f64 lo, f64 hi)
{
    Rng rng(seed);
    PlaneF32 p(w, h);
    for (auto &v : p.data())
        v = f32(rng.uniform(lo, hi));
    return p;
}

TEST(PlaneCoderTest, RoundTripErrorBounded)
{
    PlaneF32 plane = randomPlane(32, 24, 4, -120.0, 120.0);
    ByteWriter writer;
    PlaneF32 recon = encodePlane(plane, 6, writer);
    std::vector<u8> bytes = writer.take();
    ByteReader reader(bytes);
    PlaneF32 decoded = decodePlane(plane.size(), 6, reader);
    // Decoder must reproduce the encoder's reconstruction exactly.
    for (i64 i = 0; i < plane.sampleCount(); ++i) {
        EXPECT_NEAR(decoded.data()[size_t(i)],
                    recon.data()[size_t(i)], 1e-4);
    }
}

TEST(PlaneCoderTest, SmoothContentCompresses)
{
    PlaneF32 smooth(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            smooth.at(x, y) = f32(x + y);
    ByteWriter writer;
    encodePlane(smooth, 6, writer);
    // Far below 1 byte per sample for smooth data.
    EXPECT_LT(writer.size(), 64u * 64u / 4u);
}

TEST(PlaneCoderTest, NonMultipleOfEightSizes)
{
    PlaneF32 plane = randomPlane(37, 19, 5, -50.0, 50.0);
    ByteWriter writer;
    PlaneF32 recon = encodePlane(plane, 4, writer);
    std::vector<u8> bytes = writer.take();
    ByteReader reader(bytes);
    PlaneF32 decoded = decodePlane(plane.size(), 4, reader);
    EXPECT_EQ(decoded.size(), plane.size());
    for (i64 i = 0; i < plane.sampleCount(); ++i) {
        EXPECT_NEAR(decoded.data()[size_t(i)],
                    recon.data()[size_t(i)], 1e-4);
    }
}

TEST(PlaneCoderTest, RoiWeightedRoundTripMatchesEncoderRecon)
{
    PlaneF32 plane = randomPlane(48, 40, 9, -100.0, 100.0);
    Rect roi{8, 8, 24, 16};
    ByteWriter writer;
    PlaneF32 recon = encodePlaneRoi(plane, 20, 4, roi, writer);
    std::vector<u8> bytes = writer.take();
    ByteReader reader(bytes);
    PlaneF32 decoded =
        decodePlaneRoi(plane.size(), 20, 4, roi, reader);
    for (i64 i = 0; i < plane.sampleCount(); ++i) {
        EXPECT_NEAR(decoded.data()[size_t(i)],
                    recon.data()[size_t(i)], 1e-4);
    }
}

TEST(PlaneCoderTest, RoiWeightedQualityIsHigherInsideRoi)
{
    PlaneF32 plane = randomPlane(64, 64, 10, -100.0, 100.0);
    Rect roi{16, 16, 32, 32};
    ByteWriter writer;
    PlaneF32 recon = encodePlaneRoi(plane, 28, 4, roi, writer);
    f64 err_in = 0.0, err_out = 0.0;
    i64 n_in = 0, n_out = 0;
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            f64 e = std::pow(
                f64(recon.at(x, y)) - f64(plane.at(x, y)), 2);
            if (roi.contains(x, y)) {
                err_in += e;
                n_in += 1;
            } else {
                err_out += e;
                n_out += 1;
            }
        }
    }
    EXPECT_LT(err_in / f64(n_in), err_out / f64(n_out) / 4.0);
}

TEST(PlaneCoderTest, RoiWeightedSpendsBytesInsideRoi)
{
    PlaneF32 plane = randomPlane(64, 64, 11, -100.0, 100.0);
    Rect roi{16, 16, 32, 32};
    ByteWriter coarse_writer, mixed_writer;
    encodePlane(plane, 28, coarse_writer);
    encodePlaneRoi(plane, 28, 4, roi, mixed_writer);
    // Finer quantization inside the RoI costs more bytes than the
    // uniform coarse encode, but fewer than a uniform fine encode.
    ByteWriter fine_writer;
    encodePlane(plane, 4, fine_writer);
    EXPECT_GT(mixed_writer.size(), coarse_writer.size());
    EXPECT_LT(mixed_writer.size(), fine_writer.size());
}

/** Shift an image by (dx, dy) with edge clamping. */
PlaneU8
shiftPlane(const PlaneU8 &in, int dx, int dy)
{
    PlaneU8 out(in.width(), in.height());
    for (int y = 0; y < in.height(); ++y)
        for (int x = 0; x < in.width(); ++x)
            out.at(x, y) = in.atClamped(x - dx, y - dy);
    return out;
}

PlaneU8
texturedPlane(int w, int h, u64 seed)
{
    Rng rng(seed);
    PlaneU8 p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = u8(rng.uniformInt(0, 255));
    return p;
}

/**
 * Smooth textured plane: incommensurate sinusoids give the SAD
 * landscape the gradient a logarithmic (three-step) search needs —
 * white noise has a flat landscape with a single spike, which no
 * gradient-following search can find.
 */
PlaneU8
smoothTexturedPlane(int w, int h)
{
    PlaneU8 p(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            f64 v = 128.0 + 55.0 * std::sin(0.37 * x + 0.21 * y) +
                    45.0 * std::cos(0.23 * x - 0.31 * y) +
                    20.0 * std::sin(0.11 * x * 0.9 + 0.05 * y);
            p.at(x, y) = u8(v < 0 ? 0 : (v > 255 ? 255 : v));
        }
    }
    return p;
}

TEST(MotionTest, RecoversGlobalTranslation)
{
    PlaneU8 reference = smoothTexturedPlane(96, 64);
    PlaneU8 current = shiftPlane(reference, 3, -2);
    MvField mv = estimateMotion(reference, current, 16, 7);
    // Interior blocks should find the exact shift: current(x) =
    // reference(x - 3, y + 2) -> MV (-3, +2).
    int exact = 0, total = 0;
    for (int by = 1; by + 1 < mv.blocks_y; ++by) {
        for (int bx = 1; bx + 1 < mv.blocks_x; ++bx) {
            total += 1;
            if (mv.at(bx, by) == (MotionVector{-3, 2}))
                exact += 1;
        }
    }
    EXPECT_GT(exact, total * 8 / 10);
}

TEST(MotionTest, StaticSceneGivesZeroVectors)
{
    PlaneU8 reference = texturedPlane(64, 64, 7);
    MvField mv = estimateMotion(reference, reference, 16, 7);
    for (const auto &v : mv.vectors)
        EXPECT_EQ(v, (MotionVector{0, 0}));
}

TEST(MotionTest, CompensationReconstructsShiftedFrame)
{
    PlaneU8 ref_luma = texturedPlane(64, 48, 8);
    Yuv420Image reference(64, 48);
    reference.y = ref_luma;
    reference.u.fill(128);
    reference.v.fill(128);

    Yuv420Image current(64, 48);
    current.y = shiftPlane(ref_luma, 4, 0);
    current.u.fill(128);
    current.v.fill(128);

    MvField mv = estimateMotion(reference.y, current.y, 16, 7);
    Yuv420Image predicted = motionCompensate(reference, mv);
    // Interior pixels should match nearly exactly.
    i64 err = 0, n = 0;
    for (int y = 16; y < 32; ++y) {
        for (int x = 16; x < 48; ++x) {
            err += std::abs(int(predicted.y.at(x, y)) -
                            int(current.y.at(x, y)));
            n += 1;
        }
    }
    EXPECT_LT(f64(err) / f64(n), 2.0);
}

TEST(MotionTest, SizeMismatchThrows)
{
    PlaneU8 a(32, 32), b(16, 16);
    EXPECT_THROW(estimateMotion(a, b, 16, 7), PanicError);
}

/** Deterministic colorful test frame with moving content. */
ColorImage
movingFrame(int w, int h, int t)
{
    ColorImage img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            f64 v = 128 + 80 * std::sin((x + t * 2) * 0.22) *
                              std::cos(y * 0.17);
            img.setPixel(x, y, toPixel(v), toPixel(255 - v),
                         toPixel(v * 0.5 + 60));
        }
    }
    return img;
}

TEST(CodecTest, ReferenceFrameRoundTripQuality)
{
    CodecConfig config;
    config.qp = 6;
    Size size{64, 48};
    GopEncoder encoder(config, size);
    FrameDecoder decoder(config, size);

    ColorImage frame = movingFrame(64, 48, 0);
    EncodedFrame encoded = encoder.encode(frame);
    EXPECT_EQ(encoded.type, FrameType::Reference);
    ColorImage decoded = yuv420ToRgb(decoder.decode(encoded));
    EXPECT_GT(psnr(decoded, frame), 30.0);
}

TEST(CodecTest, GopStructureFollowsConfiguredSize)
{
    CodecConfig config;
    config.gop_size = 4;
    GopEncoder encoder(config, {32, 32});
    for (int i = 0; i < 10; ++i) {
        EncodedFrame f = encoder.encode(movingFrame(32, 32, i));
        if (i % 4 == 0)
            EXPECT_EQ(f.type, FrameType::Reference) << "frame " << i;
        else
            EXPECT_EQ(f.type, FrameType::NonReference)
                << "frame " << i;
        EXPECT_EQ(f.index, i);
    }
}

TEST(CodecTest, StreamRoundTripStaysAbove30Db)
{
    CodecConfig config;
    config.gop_size = 8;
    config.qp = 6;
    Size size{64, 48};
    GopEncoder encoder(config, size);
    FrameDecoder decoder(config, size);
    for (int i = 0; i < 12; ++i) {
        ColorImage frame = movingFrame(64, 48, i);
        ColorImage decoded =
            yuv420ToRgb(decoder.decode(encoder.encode(frame)));
        EXPECT_GT(psnr(decoded, frame), 29.0) << "frame " << i;
    }
}

TEST(CodecTest, InterFramesSmallerThanIntraForStaticContent)
{
    CodecConfig config;
    config.gop_size = 4;
    GopEncoder encoder(config, {64, 64});
    ColorImage frame = movingFrame(64, 64, 0);
    size_t intra = encoder.encode(frame).sizeBytes();
    size_t inter = encoder.encode(frame).sizeBytes();
    EXPECT_LT(inter, intra / 3);
}

TEST(CodecTest, SoftwareDecoderExposesInternals)
{
    CodecConfig config;
    config.gop_size = 4;
    Size size{64, 48};
    GopEncoder encoder(config, size);
    SoftwareDecoder decoder(config, size);
    DecoderInternals internals;

    decoder.decode(encoder.encode(movingFrame(64, 48, 0)), internals);
    EXPECT_TRUE(internals.mv.vectors.empty()); // reference frame

    decoder.decode(encoder.encode(movingFrame(64, 48, 1)), internals);
    EXPECT_EQ(internals.mv.blocks_x, 4);
    EXPECT_EQ(internals.mv.blocks_y, 3);
    EXPECT_EQ(internals.residual.y.size(), size);
    EXPECT_EQ(internals.residual.u.size(), (Size{32, 24}));
}

TEST(CodecTest, HardwareAndSoftwareDecodersAgree)
{
    CodecConfig config;
    config.gop_size = 4;
    Size size{64, 48};
    GopEncoder encoder(config, size);
    HardwareDecoder hw(config, size);
    SoftwareDecoder sw(config, size);
    DecoderInternals internals;
    for (int i = 0; i < 6; ++i) {
        EncodedFrame f = encoder.encode(movingFrame(64, 48, i));
        ColorImage from_hw = hw.decode(f);
        ColorImage from_sw =
            yuv420ToRgb(sw.decode(f, internals));
        EXPECT_EQ(from_hw, from_sw) << "frame " << i;
    }
}

TEST(CodecTest, NonReferenceBeforeReferenceThrows)
{
    CodecConfig config;
    config.gop_size = 4;
    Size size{32, 32};
    GopEncoder encoder(config, size);
    encoder.encode(movingFrame(32, 32, 0)); // discard the reference
    EncodedFrame p = encoder.encode(movingFrame(32, 32, 1));
    FrameDecoder fresh(config, size);
    EXPECT_THROW(fresh.decode(p), FatalError);
}

TEST(CodecTest, CorruptPayloadThrows)
{
    CodecConfig config;
    Size size{32, 32};
    GopEncoder encoder(config, size);
    EncodedFrame f = encoder.encode(movingFrame(32, 32, 0));
    f.payload[0] = 0xff; // bad tag
    FrameDecoder decoder(config, size);
    EXPECT_THROW(decoder.decode(f), FatalError);
}

TEST(CodecTest, HigherQpSmallerPayloadLowerQuality)
{
    Size size{64, 48};
    ColorImage frame = movingFrame(64, 48, 0);

    CodecConfig low_qp;
    low_qp.qp = 3;
    GopEncoder enc_low(low_qp, size);
    FrameDecoder dec_low(low_qp, size);
    EncodedFrame f_low = enc_low.encode(frame);
    f64 psnr_low = psnr(yuv420ToRgb(dec_low.decode(f_low)), frame);

    CodecConfig high_qp;
    high_qp.qp = 24;
    GopEncoder enc_high(high_qp, size);
    FrameDecoder dec_high(high_qp, size);
    EncodedFrame f_high = enc_high.encode(frame);
    f64 psnr_high = psnr(yuv420ToRgb(dec_high.decode(f_high)), frame);

    EXPECT_LT(f_high.sizeBytes(), f_low.sizeBytes());
    EXPECT_LT(psnr_high, psnr_low);
}

TEST(CodecTest, FrameSizeChangeMidStreamThrows)
{
    CodecConfig config;
    GopEncoder encoder(config, {32, 32});
    EXPECT_THROW(encoder.encode(movingFrame(64, 48, 0)), PanicError);
}

bool
yuvEqual(const Yuv420Image &a, const Yuv420Image &b)
{
    auto planeEqual = [](const PlaneU8 &pa, const PlaneU8 &pb) {
        if (pa.width() != pb.width() || pa.height() != pb.height())
            return false;
        for (i64 i = 0; i < pa.sampleCount(); ++i)
            if (pa.data()[size_t(i)] != pb.data()[size_t(i)])
                return false;
        return true;
    };
    return planeEqual(a.y, b.y) && planeEqual(a.u, b.u) &&
           planeEqual(a.v, b.v);
}

TEST(SliceTest, BandsAlignAndCoverTheFrame)
{
    auto bands = sliceBands(96, 4, 16);
    ASSERT_EQ(bands.size(), 3u); // short frame: fewer than requested
    EXPECT_EQ(bands[0], (std::pair<int, int>(0, 32)));
    EXPECT_EQ(bands[1], (std::pair<int, int>(32, 64)));
    EXPECT_EQ(bands[2], (std::pair<int, int>(64, 96)));

    auto hd = sliceBands(720, 4, 16);
    ASSERT_EQ(hd.size(), 4u);
    int row = 0;
    for (auto [r0, r1] : hd) {
        EXPECT_EQ(r0, row);
        EXPECT_EQ(r0 % 16, 0); // aligned starts
        EXPECT_GT(r1, r0);
        row = r1;
    }
    EXPECT_EQ(row, 720);
}

TEST(SliceTest, SlicedReconstructionMatchesMonolithic)
{
    Size size{64, 96};
    CodecConfig mono;
    CodecConfig sliced = mono;
    sliced.slices = 3;

    GopEncoder enc_mono(mono, size);
    GopEncoder enc_sliced(sliced, size);
    FrameDecoder dec_mono(mono, size);
    FrameDecoder dec_sliced(sliced, size);
    for (int t = 0; t < 6; ++t) {
        ColorImage frame = movingFrame(size.width, size.height, t);
        EncodedFrame f_mono = enc_mono.encode(frame);
        EncodedFrame f_sliced = enc_sliced.encode(frame);
        EXPECT_EQ(f_mono.type, f_sliced.type);
        // Different bitstreams (per-slice entropy reset + table)...
        EXPECT_NE(f_mono.payload, f_sliced.payload);
        // ...but bit-identical pixels when every slice arrives.
        EXPECT_TRUE(yuvEqual(dec_mono.decode(f_mono),
                             dec_sliced.decode(f_sliced)))
            << "frame " << t;
    }
}

TEST(SliceTest, FrameSliceLayoutParsesBothBitstreams)
{
    Size size{64, 96};
    CodecConfig config;
    config.slices = 3;
    GopEncoder encoder(config, size);
    EncodedFrame f = encoder.encode(movingFrame(64, 96, 0));

    SliceLayout layout = frameSliceLayout(f.payload);
    ASSERT_TRUE(layout.ok);
    EXPECT_TRUE(layout.sliced);
    ASSERT_EQ(layout.ranges.size(), 3u);
    size_t off = layout.header_bytes;
    for (const auto &[a, b] : layout.ranges) {
        EXPECT_EQ(a, off);
        EXPECT_GT(b, a);
        off = b;
    }
    EXPECT_EQ(off, f.payload.size());

    CodecConfig mono;
    GopEncoder enc_mono(mono, size);
    EncodedFrame m = enc_mono.encode(movingFrame(64, 96, 0));
    SliceLayout mono_layout = frameSliceLayout(m.payload);
    ASSERT_TRUE(mono_layout.ok);
    EXPECT_FALSE(mono_layout.sliced);
    ASSERT_EQ(mono_layout.ranges.size(), 1u);
    EXPECT_EQ(mono_layout.ranges[0].second, m.payload.size());

    EXPECT_FALSE(frameSliceLayout({}).ok);
    EXPECT_FALSE(frameSliceLayout({0xff, 1, 2, 3, 4, 5, 6}).ok);
}

TEST(SliceTest, MissingDeltaSliceConcealsFromPreviousFrame)
{
    Size size{64, 96};
    CodecConfig config;
    config.slices = 3;
    GopEncoder encoder(config, size);
    EncodedFrame ref = encoder.encode(movingFrame(64, 96, 0));
    EncodedFrame delta = encoder.encode(movingFrame(64, 96, 1));
    ASSERT_EQ(delta.type, FrameType::NonReference);

    FrameDecoder full(config, size);
    Yuv420Image prev_full = full.decode(ref);
    Yuv420Image delta_full = full.decode(delta);

    FrameDecoder partial(config, size);
    Yuv420Image prev = partial.decode(ref);
    EncodedFrame degraded = delta;
    degraded.slice_present = {true, false, true};
    Yuv420Image concealed = partial.decode(degraded);

    // Present bands decode bit-identically to the full decode; the
    // missing band is held from the previous reconstruction (zero-MV
    // prediction with no residual).
    const Rect band0{0, 0, 64, 32};
    const Rect band1{0, 32, 64, 32};
    const Rect band2{0, 64, 64, 32};
    auto crops_equal = [](const PlaneU8 &a, const PlaneU8 &b,
                          const Rect &r) {
        Plane<u8> ca = a.crop(r), cb = b.crop(r);
        for (i64 i = 0; i < ca.sampleCount(); ++i)
            if (ca.data()[size_t(i)] != cb.data()[size_t(i)])
                return false;
        return true;
    };
    EXPECT_TRUE(crops_equal(concealed.y, delta_full.y, band0));
    EXPECT_TRUE(crops_equal(concealed.y, delta_full.y, band2));
    EXPECT_TRUE(crops_equal(concealed.y, prev_full.y, band1));
    EXPECT_FALSE(crops_equal(concealed.y, delta_full.y, band1));

    // A fully delivered sliced frame with explicit flags decodes
    // exactly like one with the default empty flag vector.
    FrameDecoder explicit_flags(config, size);
    explicit_flags.decode(ref);
    EncodedFrame all_present = delta;
    all_present.slice_present = {true, true, true};
    EXPECT_TRUE(
        yuvEqual(explicit_flags.decode(all_present), delta_full));
}

TEST(SliceTest, MissingIntraSliceConcealsOrFillsGray)
{
    Size size{64, 96};
    CodecConfig config;
    config.slices = 3;
    GopEncoder encoder(config, size);
    EncodedFrame ref = encoder.encode(movingFrame(64, 96, 0));

    // No previous frame at all: the missing band is mid-gray.
    FrameDecoder cold(config, size);
    EncodedFrame degraded = ref;
    degraded.slice_present = {true, false, true};
    Yuv420Image out = cold.decode(degraded);
    for (int y = 32; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            ASSERT_EQ(out.y.at(x, y), 128);
}

TEST(SliceTest, MonolithicPayloadRejectsMissingSlices)
{
    CodecConfig config;
    Size size{32, 32};
    GopEncoder encoder(config, size);
    EncodedFrame f = encoder.encode(movingFrame(32, 32, 0));
    f.slice_present = {false};
    FrameDecoder decoder(config, size);
    EXPECT_THROW(decoder.decode(f), FatalError);
}

TEST(SliceTest, SlicePresentSizeMismatchThrows)
{
    Size size{64, 96};
    CodecConfig config;
    config.slices = 3;
    GopEncoder encoder(config, size);
    EncodedFrame f = encoder.encode(movingFrame(64, 96, 0));
    f.slice_present = {true, false}; // stream carries 3 slices
    FrameDecoder decoder(config, size);
    EXPECT_THROW(decoder.decode(f), FatalError);
}

} // namespace
} // namespace gssr
