/**
 * @file
 * Unit tests for the unified QoE control plane (src/qoe): the
 * ControlAction/KnobState vocabulary, the predictor's monotonicity
 * contract, the once-off calibration against measured PSNR/SSIM on
 * renderer scenes, the controller's hysteresis / refractory
 * no-oscillation guarantees, the ladder-vs-AIMD double-cut
 * regression, and the golden guard: a controller-disabled session is
 * bit-identical to the checked-in golden fingerprints.
 */

#include <gtest/gtest.h>

#include "codec/rate_control.hh"
#include "golden_sessions.hh"
#include "pipeline/session.hh"
#include "qoe/actions.hh"
#include "qoe/controller.hh"
#include "qoe/predictor.hh"

namespace gssr
{
namespace
{

using namespace qoe;

// ---------------------------------------------------------------
// ControlAction / KnobState vocabulary
// ---------------------------------------------------------------

KnobState
defaultKnobs()
{
    KnobState knobs;
    knobs.lr_size = {1280, 720};
    knobs.target_mbps = 6.0;
    return knobs;
}

TEST(ActionTest, KindNames)
{
    EXPECT_STREQ(actionKindName(ActionKind::Hold), "hold");
    EXPECT_STREQ(actionKindName(ActionKind::BitrateStep),
                 "bitrate-step");
    EXPECT_STREQ(actionKindName(ActionKind::Shed), "shed");
}

TEST(ActionTest, ResolutionStepsDownByThreeQuartersSnapped)
{
    KnobState knobs = defaultKnobs();
    KnobBounds bounds;
    ControlAction step{ActionKind::ResolutionStep, -1, 1.0, 0.5, ""};
    ASSERT_TRUE(applyAction(knobs, step, bounds));
    EXPECT_EQ(knobs.lr_size.width, 960);
    EXPECT_EQ(knobs.lr_size.width % 4, 0);
    EXPECT_EQ(knobs.lr_size.height % 4, 0);

    // Stepping repeatedly hits the admission floor and then refuses.
    while (applyAction(knobs, step, bounds))
        ;
    EXPECT_GE(knobs.lr_size.width, bounds.min_width);
}

TEST(ActionTest, FrameRateStepTogglesDivisorWithinBounds)
{
    KnobState knobs = defaultKnobs();
    KnobBounds bounds;
    ControlAction down{ActionKind::FrameRateStep, -1, 1.0, 0.5, ""};
    ControlAction up{ActionKind::FrameRateStep, +1, 1.0, 0.0, ""};
    ASSERT_TRUE(applyAction(knobs, down, bounds));
    EXPECT_EQ(knobs.fps_divisor, 2);
    EXPECT_FALSE(applyAction(knobs, down, bounds)); // divisor floor
    ASSERT_TRUE(applyAction(knobs, up, bounds));
    EXPECT_EQ(knobs.fps_divisor, 1);
    EXPECT_FALSE(applyAction(knobs, up, bounds)); // already full rate
}

TEST(ActionTest, BitrateStepIsMultiplicativeAndClamped)
{
    KnobState knobs = defaultKnobs();
    KnobBounds bounds;
    ControlAction cut{ActionKind::BitrateStep, -1, 0.85, 0.7, ""};
    ASSERT_TRUE(applyAction(knobs, cut, bounds));
    EXPECT_DOUBLE_EQ(knobs.target_mbps, 6.0 * 0.85);

    ControlAction raise{ActionKind::BitrateStep, +1, 0.85, 0.0, ""};
    ASSERT_TRUE(applyAction(knobs, raise, bounds));
    EXPECT_DOUBLE_EQ(knobs.target_mbps, 6.0);

    // Clamped at the floor; at the floor a further cut is a no-op.
    knobs.target_mbps = bounds.min_mbps;
    EXPECT_FALSE(applyAction(knobs, cut, bounds));
    EXPECT_DOUBLE_EQ(knobs.target_mbps, bounds.min_mbps);

    // Fixed-qp sessions (no target) have no bitrate knob to turn.
    knobs.target_mbps = 0.0;
    EXPECT_FALSE(applyAction(knobs, cut, bounds));
}

TEST(ActionTest, PrecisionStepWalksTheTierLadder)
{
    KnobState knobs = defaultKnobs();
    KnobBounds bounds;
    ControlAction down{ActionKind::PrecisionStep, -1, 1.0, 1.0, ""};
    ControlAction up{ActionKind::PrecisionStep, +1, 1.0, 0.2, ""};

    EXPECT_FALSE(applyAction(knobs, up, bounds)); // tier-0 ceiling
    ASSERT_TRUE(applyAction(knobs, down, bounds));
    EXPECT_EQ(knobs.tier, 1);
    for (int i = 0; i < 10; ++i)
        applyAction(knobs, down, bounds);
    EXPECT_EQ(knobs.tier, bounds.max_tier); // clamped
    ASSERT_TRUE(applyAction(knobs, up, bounds));
    EXPECT_EQ(knobs.tier, bounds.max_tier - 1);
}

TEST(ActionTest, HoldAdmitShedLeaveKnobsUntouched)
{
    KnobState knobs = defaultKnobs();
    const KnobState before = knobs;
    KnobBounds bounds;
    for (ActionKind kind :
         {ActionKind::Hold, ActionKind::Admit, ActionKind::Shed}) {
        ControlAction action;
        action.kind = kind;
        EXPECT_FALSE(applyAction(knobs, action, bounds));
    }
    EXPECT_EQ(knobs.lr_size.width, before.lr_size.width);
    EXPECT_EQ(knobs.fps_divisor, before.fps_divisor);
    EXPECT_DOUBLE_EQ(knobs.target_mbps, before.target_mbps);
    EXPECT_EQ(knobs.tier, before.tier);
}

// ---------------------------------------------------------------
// Predictor monotonicity (the documented property contract)
// ---------------------------------------------------------------

TEST(PredictorTest, ScoreIsNonIncreasingInQp)
{
    QoePredictor predictor;
    QoeFeatures f;
    f64 prev = 1e9;
    for (f64 qp = 4.0; qp <= 48.0; qp += 2.0) {
        f.qp = qp;
        const f64 s = predictor.score(f);
        EXPECT_LE(s, prev) << "score increased at qp=" << qp;
        prev = s;
    }
}

TEST(PredictorTest, ScoreIsNonIncreasingInConcealRate)
{
    QoePredictor predictor;
    QoeFeatures f;
    f64 prev = 1e9;
    for (f64 c = 0.0; c <= 1.0; c += 0.05) {
        f.conceal_rate = c;
        const f64 s = predictor.score(f);
        EXPECT_LE(s, prev) << "score increased at conceal=" << c;
        prev = s;
    }
    f.conceal_rate = 1.0; // fully concealed
    EXPECT_NEAR(predictor.score(f), 0.0, 1e-9);
}

TEST(PredictorTest, ScoreIsNonDecreasingInFrameRate)
{
    QoePredictor predictor;
    QoeFeatures f;
    f64 prev = -1.0;
    for (f64 fps = 1.0; fps <= 60.0; fps += 1.0) {
        f.frame_rate = fps;
        const f64 s = predictor.score(f);
        EXPECT_GE(s, prev) << "score decreased at fps=" << fps;
        prev = s;
    }
}

TEST(PredictorTest, ScoreIsNonDecreasingInResolutionScale)
{
    QoePredictor predictor;
    QoeFeatures f;
    f64 prev = -1.0;
    for (f64 scale = 0.1; scale <= 1.0; scale += 0.05) {
        f.resolution_scale = scale;
        const f64 s = predictor.score(f);
        EXPECT_GE(s, prev) << "score decreased at scale=" << scale;
        prev = s;
    }
}

TEST(PredictorTest, ScoreStaysWithinZeroToHundred)
{
    QoePredictor predictor;
    for (f64 qp : {1.0, 14.0, 51.0}) {
        for (f64 conceal : {0.0, 0.3, 1.0}) {
            for (f64 fps : {1.0, 30.0, 60.0}) {
                for (f64 scale : {0.1, 0.5, 1.0}) {
                    QoeFeatures f;
                    f.qp = qp;
                    f.conceal_rate = conceal;
                    f.frame_rate = fps;
                    f.resolution_scale = scale;
                    f.mv_mean_px = 3.0;
                    f.residual_rms = 8.0;
                    const f64 s = predictor.score(f);
                    EXPECT_GE(s, 0.0);
                    EXPECT_LE(s, 100.0);
                }
            }
        }
    }
}

TEST(PredictorTest, PrecisionPenaltyOrdersTheScores)
{
    QoePredictor predictor;
    QoeFeatures f;
    f.sr_precision = Precision::Fp32;
    const f64 fp32 = predictor.score(f);
    f.sr_precision = Precision::Int16;
    const f64 int16 = predictor.score(f);
    f.sr_precision = Precision::HybridInt8;
    const f64 hybrid = predictor.score(f);
    f.sr_precision = Precision::Int8;
    const f64 int8 = predictor.score(f);
    EXPECT_GT(fp32, int16);
    EXPECT_GT(int16, hybrid);
    EXPECT_GT(hybrid, int8);
}

// ---------------------------------------------------------------
// Calibration against measured PSNR/SSIM on renderer scenes
// ---------------------------------------------------------------

TEST(CalibrationTest, FitsMeasuredPsnrOnTwoScenes)
{
    const std::vector<std::pair<GameId, u64>> scenes = {
        {GameId::G3_Witcher3, 7}, {GameId::G1_MetroExodus, 3}};
    CalibrationResult result = calibrateQoePredictor(
        QoePredictorConfig{}, Size{192, 96}, scenes);

    // 2 scenes x 4-point qp sweep x 3 frames.
    ASSERT_EQ(result.samples.size(), 24u);
    for (const CalibrationSample &s : result.samples) {
        EXPECT_GT(s.measured_psnr, 10.0);
        EXPECT_LT(s.measured_psnr, 60.0);
        EXPECT_GT(s.measured_ssim, 0.0);
        EXPECT_LE(s.measured_ssim, 1.0);
    }

    // The affine fit must preserve monotonicity (positive gain) and
    // land every sample within a sane band of the measurement.
    EXPECT_GT(result.calibration.gain, 0.0);
    EXPECT_LT(result.max_abs_error_db, 6.0)
        << "calibrated spatial core drifted from measured PSNR";

    // Calibration is deterministic: same scenes -> same fit.
    CalibrationResult again = calibrateQoePredictor(
        QoePredictorConfig{}, Size{192, 96}, scenes);
    EXPECT_DOUBLE_EQ(result.calibration.gain, again.calibration.gain);
    EXPECT_DOUBLE_EQ(result.calibration.offset,
                     again.calibration.offset);
}

TEST(CalibrationTest, CalibratedPredictorTracksQpSweep)
{
    // Measured PSNR falls with qp on real scenes; the calibrated
    // spatial proxy must fall with it (same ordering at the sweep
    // points, averaged over the samples).
    const std::vector<std::pair<GameId, u64>> scenes = {
        {GameId::G3_Witcher3, 7}};
    CalibrationResult result = calibrateQoePredictor(
        QoePredictorConfig{}, Size{192, 96}, scenes);

    f64 mean_low = 0.0, mean_high = 0.0;
    int n_low = 0, n_high = 0;
    for (const CalibrationSample &s : result.samples) {
        if (s.qp <= 14) {
            mean_low += s.measured_psnr;
            ++n_low;
        } else {
            mean_high += s.measured_psnr;
            ++n_high;
        }
    }
    ASSERT_GT(n_low, 0);
    ASSERT_GT(n_high, 0);
    EXPECT_GT(mean_low / n_low, mean_high / n_high)
        << "renderer scenes do not exercise the qp/PSNR tradeoff";
}

// ---------------------------------------------------------------
// Controller: hysteresis, refractory, greedy arbitration
// ---------------------------------------------------------------

QoeControlConfig
enabledConfig()
{
    QoeControlConfig config;
    config.enabled = true;
    return config;
}

QoeFeatures
distressedFeatures()
{
    QoeFeatures f;
    f.qp = 20.0;
    f.conceal_rate = 0.4;
    return f;
}

TEST(ControllerTest, QuietSessionHolds)
{
    QoeController controller(enabledConfig(), defaultKnobs());
    QoeFeatures clean;
    for (int tick = 0; tick < 10; ++tick) {
        controller.observeFrame(clean);
        // A zero-urgency cut proposal on a clean session predicts a
        // QoE loss -> the controller holds.
        controller.propose(
            {ActionKind::BitrateStep, -1, 0.85, 0.0, "aimd"});
        const ControlAction applied =
            controller.decide(f64(tick) * 16.7);
        EXPECT_EQ(applied.kind, ActionKind::Hold);
    }
    EXPECT_EQ(controller.actionsApplied(), 0);
    EXPECT_DOUBLE_EQ(controller.knobs().target_mbps, 6.0);
}

TEST(ControllerTest, DistressAppliesTheSheddingAction)
{
    QoeController controller(enabledConfig(), defaultKnobs());
    controller.observeFrame(distressedFeatures());
    controller.propose(
        {ActionKind::BitrateStep, -1, 0.85, 1.0, "aimd"});
    const ControlAction applied = controller.decide(0.0);
    EXPECT_EQ(applied.kind, ActionKind::BitrateStep);
    EXPECT_EQ(applied.direction, -1);
    EXPECT_DOUBLE_EQ(controller.knobs().target_mbps, 6.0 * 0.85);
    EXPECT_TRUE(controller.inCutRefractory(100.0));
}

TEST(ControllerTest, HysteresisBlocksReversalWithinWindow)
{
    QoeControlConfig config = enabledConfig();
    ASSERT_EQ(config.hysteresis_ticks, 3);
    QoeController controller(config, defaultKnobs());

    // Tick 1: distress -> cut applied.
    controller.observeFrame(distressedFeatures());
    controller.propose(
        {ActionKind::BitrateStep, -1, 0.85, 1.0, "aimd"});
    ASSERT_EQ(controller.decide(0.0).kind, ActionKind::BitrateStep);

    // Ticks 2..3 (inside the window): the channel recovers and the
    // advisor proposes the exact reversal -> must hold, even though
    // the predicted gain is positive.
    QoeFeatures clean;
    for (int tick = 2; tick <= 3; ++tick) {
        controller.observeFrame(clean);
        controller.propose(
            {ActionKind::BitrateStep, +1, 0.85, 0.3, "aimd"});
        EXPECT_EQ(controller.decide(f64(tick) * 500.0).kind,
                  ActionKind::Hold)
            << "reversal applied inside the hysteresis window";
    }

    // Tick 4 (window expired): the up-step goes through.
    controller.observeFrame(clean);
    controller.propose(
        {ActionKind::BitrateStep, +1, 0.85, 0.3, "aimd"});
    EXPECT_EQ(controller.decide(2000.0).kind,
              ActionKind::BitrateStep);
    EXPECT_DOUBLE_EQ(controller.knobs().target_mbps, 6.0);
}

TEST(ControllerTest, NoOscillationUnderAlternatingAdvice)
{
    // Adversarial advisors flip their advice every tick; hysteresis
    // + the action gap must keep the knob from ping-ponging: across
    // 60 ticks the controller may act, but never reverse within the
    // hysteresis window.
    QoeControlConfig config = enabledConfig();
    QoeController controller(config, defaultKnobs());

    i64 last_applied_tick = -1000;
    int last_direction = 0;
    for (int tick = 0; tick < 60; ++tick) {
        const bool bad = tick % 2 == 0;
        controller.observeFrame(bad ? distressedFeatures()
                                    : QoeFeatures{});
        controller.propose({ActionKind::BitrateStep, bad ? -1 : +1,
                            0.85, bad ? 1.0 : 0.3, "aimd"});
        const ControlAction applied =
            controller.decide(f64(tick) * 500.0);
        if (applied.kind == ActionKind::Hold)
            continue;
        if (applied.direction == -last_direction &&
            last_direction != 0) {
            EXPECT_GE(tick - last_applied_tick,
                      config.hysteresis_ticks)
                << "reversal inside the hysteresis window at tick "
                << tick;
        }
        EXPECT_GE(tick - last_applied_tick,
                  config.min_action_gap_ticks)
            << "two actions inside the gap at tick " << tick;
        last_applied_tick = tick;
        last_direction = applied.direction;
    }
}

TEST(ControllerTest, RefractoryDefersSecondCut)
{
    QoeController controller(enabledConfig(), defaultKnobs());

    // An external cut (e.g. the legacy ladder) arms the window.
    controller.noteCut(1000.0);
    controller.observeFrame(distressedFeatures());
    controller.propose(
        {ActionKind::BitrateStep, -1, 0.85, 1.0, "aimd"});
    EXPECT_EQ(controller.decide(1100.0).kind, ActionKind::Hold)
        << "second bitrate cut applied inside the refractory window";
    EXPECT_DOUBLE_EQ(controller.knobs().target_mbps, 6.0);

    // Past the window the same advice is followed.
    controller.observeFrame(distressedFeatures());
    controller.propose(
        {ActionKind::BitrateStep, -1, 0.85, 1.0, "aimd"});
    EXPECT_EQ(controller.decide(1400.0).kind,
              ActionKind::BitrateStep);
}

TEST(ControllerTest, GreedyPicksTheCheaperEquivalentRelief)
{
    // Two shedding proposals with equal urgency: the bitrate cut is
    // cheaper (smaller knob distance) than jumping to the hold tier,
    // so greedy delta-QoE-per-cost must choose it.
    QoeController controller(enabledConfig(), defaultKnobs());
    controller.observeFrame(distressedFeatures());
    controller.propose(
        {ActionKind::BitrateStep, -1, 0.85, 0.8, "aimd"});
    controller.propose(
        {ActionKind::PrecisionStep, -1, 4.0, 0.8, "ladder"});
    const ControlAction applied = controller.decide(0.0);
    EXPECT_EQ(applied.kind, ActionKind::BitrateStep);
    EXPECT_EQ(controller.knobs().tier, 0);
}

// ---------------------------------------------------------------
// Double-cut regression: ladder x AIMD one-cut-per-episode
// ---------------------------------------------------------------

TEST(DoubleCutTest, GatedLadderScaleDefersDecreaseInRefractory)
{
    // Decrease during refractory: deferred (keeps the applied scale).
    EXPECT_DOUBLE_EQ(gatedLadderScale(1.0, 0.8, true), 1.0);
    // Decrease outside refractory: applies.
    EXPECT_DOUBLE_EQ(gatedLadderScale(1.0, 0.8, false), 0.8);
    // Recovery (increase) always applies, refractory or not.
    EXPECT_DOUBLE_EQ(gatedLadderScale(0.8, 1.0, true), 1.0);
    EXPECT_DOUBLE_EQ(gatedLadderScale(0.8, 1.0, false), 1.0);
}

TEST(DoubleCutTest, ExternalCutArmsAimdRefractory)
{
    AimdController aimd(AimdConfig{}, 6.0);
    ASSERT_FALSE(aimd.inRefractory(0.0));

    // The ladder cuts first; AIMD must not cut again in the window.
    aimd.noteExternalCut(0.0);
    EXPECT_TRUE(aimd.inRefractory(100.0));
    EXPECT_FALSE(aimd.onCongestion(100.0))
        << "AIMD backed off on top of the ladder's cut";
    EXPECT_EQ(aimd.backoffCount(), 0);
    EXPECT_DOUBLE_EQ(aimd.targetMbps(), 6.0);

    // Past the window congestion is a fresh episode.
    EXPECT_FALSE(aimd.inRefractory(300.0));
    EXPECT_TRUE(aimd.onCongestion(300.0));
    EXPECT_EQ(aimd.backoffCount(), 1);
    EXPECT_DOUBLE_EQ(aimd.targetMbps(), 6.0 * 0.7);
}

TEST(DoubleCutTest, AimdBackoffGatesLadderScaleDecrease)
{
    // The converse order: AIMD backs off first, then the ladder asks
    // for a scale decrease in the same episode -> deferred; the same
    // request after the window applies.
    AimdController aimd(AimdConfig{}, 6.0);
    ASSERT_TRUE(aimd.onCongestion(50.0));
    f64 applied = 1.0;
    applied = gatedLadderScale(applied, 0.85,
                               aimd.inRefractory(100.0));
    EXPECT_DOUBLE_EQ(applied, 1.0) << "double cut in one episode";
    applied = gatedLadderScale(applied, 0.85,
                               aimd.inRefractory(400.0));
    EXPECT_DOUBLE_EQ(applied, 0.85);
}

// ---------------------------------------------------------------
// Golden guard: the control plane off is a strict no-op
// ---------------------------------------------------------------

TEST(QoeGoldenGuardTest, ControllerOffSessionsMatchGoldens)
{
    for (const golden::Golden &g : golden::kGoldens) {
        SessionConfig config = golden::canonicalConfig(g.design);
        config.qoe.enabled = false; // explicit, not just the default
        SessionResult result = runSession(config);
        EXPECT_EQ(sessionFingerprint(result), g.fingerprint)
            << "disabled QoE control plane perturbed the " << g.name
            << " golden session";
        EXPECT_EQ(result.qoe_actions, 0);

        // QoE is still *scored* in legacy mode (observability), one
        // sample per displayed frame, without touching the trace.
        ASSERT_EQ(result.qoe_frames.size(), 30u);
        for (f64 s : result.qoe_frames) {
            EXPECT_GE(s, 0.0);
            EXPECT_LE(s, 100.0);
        }
        EXPECT_GT(result.meanQoe(), 0.0);
        EXPECT_LE(result.qoePercentile(10.0), result.meanQoe());
    }
}

TEST(QoeGoldenGuardTest, UnifiedModeRunsAndScoresEveryFrame)
{
    // The enabled control plane must drive a session to completion
    // with sane scores; behavior (and hence the fingerprint) may
    // legitimately differ from the goldens — this is the liveness
    // counterpart of the no-op guard above.
    SessionConfig config =
        golden::canonicalConfig(DesignKind::GameStreamSR);
    config.qoe.enabled = true;
    SessionResult result = runSession(config);
    ASSERT_EQ(result.qoe_frames.size(), 30u);
    for (f64 s : result.qoe_frames) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 100.0);
    }
    EXPECT_EQ(result.traces.size(), 30u);
}

TEST(QoeGoldenGuardTest, UnifiedModeIsDeterministic)
{
    SessionConfig config =
        golden::canonicalConfig(DesignKind::GameStreamSR);
    config.qoe.enabled = true;
    const u64 first = sessionFingerprint(runSession(config));
    const u64 second = sessionFingerprint(runSession(config));
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace gssr
