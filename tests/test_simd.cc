/**
 * @file
 * Tests of the SIMD kernel layer: aligned-allocator guarantees,
 * dispatch override plumbing, bitwise scalar-vs-AVX2 equivalence of
 * every kernel over adversarial shapes (non-multiple-of-8 widths,
 * 1-element tails, odd pitches, unaligned pointers, quantizer ties),
 * and end-to-end equivalence of the subsystems built on the kernels.
 * On hosts without AVX2 the comparison tests skip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "codec/dct.hh"
#include "codec/motion.hh"
#include "codec/plane_coder.hh"
#include "common/fingerprint.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "frame/downsample.hh"
#include "kernels/kernels.hh"
#include "metrics/ssim.hh"
#include "nn/layers.hh"

namespace gssr
{
namespace
{

/** The AVX2 table, or nullptr when this host cannot run it. */
const kern::KernelTable *
avx2OrSkipTable()
{
    if (detectedSimdLevel() < SimdLevel::Avx2)
        return nullptr;
    return kern::avx2Kernels();
}

#define SKIP_WITHOUT_AVX2()                                            \
    const kern::KernelTable *avx = avx2OrSkipTable();                  \
    if (avx == nullptr)                                                \
        GTEST_SKIP() << "host has no AVX2 path";                       \
    const kern::KernelTable &ref = kern::scalarKernels()

/** Shapes that exercise full vectors, partial tails and n == 1. */
const std::vector<i64> kLengths = {1,  2,  3,  4,  7,  8,  9,   15,
                                   16, 17, 31, 32, 33, 63, 64,  65,
                                   67, 96, 100, 255, 256, 257, 1000};

PlaneU8
randomPlaneU8(int w, int h, u64 seed)
{
    Rng rng(seed);
    PlaneU8 p(w, h);
    for (auto &v : p.data())
        v = u8(rng.uniformInt(0, 255));
    return p;
}

TEST(AlignedAllocatorTest, AllSizesAndTypesAligned)
{
    for (size_t n : {size_t(1), size_t(3), size_t(7), size_t(31),
                     size_t(32), size_t(33), size_t(1000)}) {
        AlignedVec<u8> a(n);
        AlignedVec<f32> b(n);
        AlignedVec<f64> c(n);
        AlignedVec<i32> d(n);
        EXPECT_TRUE(isSimdAligned(a.data())) << n;
        EXPECT_TRUE(isSimdAligned(b.data())) << n;
        EXPECT_TRUE(isSimdAligned(c.data())) << n;
        EXPECT_TRUE(isSimdAligned(d.data())) << n;
    }
}

TEST(AlignedAllocatorTest, GrowthKeepsAlignment)
{
    AlignedVec<f32> v;
    for (int i = 0; i < 100; ++i) {
        v.push_back(f32(i));
        ASSERT_TRUE(isSimdAligned(v.data()));
    }
}

TEST(AlignedAllocatorTest, PlaneAndTensorStorageAligned)
{
    PlaneU8 p(37, 13);
    EXPECT_TRUE(isSimdAligned(p.data().data()));
    Tensor t(3, 17, 23);
    EXPECT_TRUE(isSimdAligned(t.data().data()));
}

TEST(SimdDispatchTest, ForceOverridesActiveLevel)
{
    SimdLevel detected = detectedSimdLevel();
    forceSimdLevel(SimdLevel::Scalar);
    EXPECT_EQ(activeSimdLevel(), SimdLevel::Scalar);
    EXPECT_EQ(kern::kernelTable().level, SimdLevel::Scalar);
    clearForcedSimdLevel();
    if (detected >= SimdLevel::Avx2 &&
        kern::avx2Kernels() != nullptr) {
        forceSimdLevel(SimdLevel::Avx2);
        EXPECT_EQ(kern::kernelTable().level, SimdLevel::Avx2);
        clearForcedSimdLevel();
    }
}

TEST(SimdDispatchTest, GenerationBumpsOnForce)
{
    u64 g0 = simdConfigGeneration();
    forceSimdLevel(SimdLevel::Scalar);
    u64 g1 = simdConfigGeneration();
    clearForcedSimdLevel();
    u64 g2 = simdConfigGeneration();
    EXPECT_GT(g1, g0);
    EXPECT_GT(g2, g1);
}

TEST(SimdKernelTest, AxpyBitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(1);
    for (i64 n : kLengths) {
        // +3 offset: unaligned source and destination pointers.
        for (i64 off : {i64(0), i64(3)}) {
            AlignedVec<f32> src(static_cast<size_t>(n + off));
            for (auto &v : src)
                v = f32(rng.uniform(-4.0, 4.0));
            AlignedVec<f32> d0(size_t(n + off), 0.5f);
            AlignedVec<f32> d1 = d0;
            f32 w = f32(rng.uniform(-2.0, 2.0));
            ref.axpy_f32(d0.data() + off, src.data() + off, w, n);
            avx->axpy_f32(d1.data() + off, src.data() + off, w, n);
            ASSERT_EQ(fnv1aVec(d0), fnv1aVec(d1))
                << "n=" << n << " off=" << off;
        }
    }
}

TEST(SimdKernelTest, DctRoundTripBitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(2);
    for (int iter = 0; iter < 200; ++iter) {
        alignas(32) f32 in[64];
        for (auto &v : in)
            v = f32(rng.uniform(-255.0, 255.0));
        alignas(32) f32 f0[64], f1[64], i0[64], i1[64];
        ref.dct_forward_8x8(in, f0);
        avx->dct_forward_8x8(in, f1);
        ASSERT_EQ(fnv1a(f0, sizeof(f0)), fnv1a(f1, sizeof(f1)))
            << "forward iter " << iter;
        ref.dct_inverse_8x8(f0, i0);
        avx->dct_inverse_8x8(f0, i1);
        ASSERT_EQ(fnv1a(i0, sizeof(i0)), fnv1a(i1, sizeof(i1)))
            << "inverse iter " << iter;
    }
}

TEST(SimdKernelTest, QuantizeBitExactIncludingTies)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(3);
    for (int qp : {1, 4, 8, 31, 48}) {
        const QuantTable &table = quantTableForQp(qp);
        for (int iter = 0; iter < 100; ++iter) {
            alignas(32) f32 coef[64];
            for (int i = 0; i < 64; ++i) {
                if (iter % 3 == 0) {
                    // Exact half-integer multiples of the step: the
                    // lround tie cases where round-half-even and
                    // round-half-away-from-zero differ.
                    int k = rng.uniformInt(-8, 8);
                    coef[i] =
                        table.step[size_t(i)] * (f32(k) + 0.5f);
                } else {
                    coef[i] = f32(rng.uniform(-512.0, 512.0));
                }
            }
            alignas(32) i32 q0[64], q1[64];
            ref.quantize_8x8(coef, table.step.data(), q0);
            avx->quantize_8x8(coef, table.step.data(), q1);
            for (int i = 0; i < 64; ++i) {
                ASSERT_EQ(q0[i], q1[i])
                    << "qp=" << qp << " i=" << i
                    << " coef=" << coef[i]
                    << " step=" << table.step[size_t(i)];
                ASSERT_EQ(q0[i], i32(std::lround(
                                     coef[i] / table.step[size_t(i)])))
                    << "lround mismatch at i=" << i;
            }
            alignas(32) f32 r0[64], r1[64];
            ref.dequantize_8x8(q0, table.step.data(), r0);
            avx->dequantize_8x8(q0, table.step.data(), r1);
            ASSERT_EQ(fnv1a(r0, sizeof(r0)), fnv1a(r1, sizeof(r1)));
        }
    }
}

TEST(SimdKernelTest, SadRectBitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(4);
    const std::vector<int> sizes = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                                    31, 33, 48, 64};
    for (int w : sizes) {
        for (int h : {1, 3, 8, 16, 17}) {
            // Odd pitches force the kernel off any aligned assumption.
            i64 pa = w + 3;
            i64 pb = w + 7;
            AlignedVec<u8> a(static_cast<size_t>(pa * h));
            AlignedVec<u8> b(static_cast<size_t>(pb * h));
            for (auto &v : a)
                v = u8(rng.uniformInt(0, 255));
            for (auto &v : b)
                v = u8(rng.uniformInt(0, 255));
            for (i64 early : {INT64_MAX, i64(w * h), i64(1)}) {
                i64 s0 = ref.sad_rect_u8(a.data(), pa, b.data(), pb, w,
                                         h, early);
                i64 s1 = avx->sad_rect_u8(a.data(), pa, b.data(), pb,
                                          w, h, early);
                ASSERT_EQ(s0, s1) << "w=" << w << " h=" << h
                                  << " early=" << early;
            }
        }
    }
}

TEST(SimdKernelTest, GaussRowBitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(5);
    constexpr int kRadius = 5;
    f64 taps[2 * kRadius + 1];
    f64 sum = 0.0;
    for (int i = -kRadius; i <= kRadius; ++i) {
        taps[i + kRadius] = std::exp(-f64(i * i) / 4.5);
        sum += taps[i + kRadius];
    }
    for (auto &t : taps)
        t /= sum;
    for (i64 n : kLengths) {
        int w = int(n);
        AlignedVec<f64> in(static_cast<size_t>(w));
        for (auto &v : in)
            v = rng.uniform(0.0, 255.0);
        AlignedVec<f64> o0(static_cast<size_t>(w)), o1(static_cast<size_t>(w));
        ref.gauss_row_f64(in.data(), o0.data(), w, taps, kRadius);
        avx->gauss_row_f64(in.data(), o1.data(), w, taps, kRadius);
        ASSERT_EQ(fnv1aVec(o0), fnv1aVec(o1)) << "w=" << w;
    }
}

TEST(SimdKernelTest, WeightedSumRowsBitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(6);
    constexpr int kTaps = 11;
    f64 taps[kTaps];
    for (auto &t : taps)
        t = rng.uniform(0.0, 0.3);
    for (i64 n : kLengths) {
        int w = int(n);
        std::vector<AlignedVec<f64>> rows(kTaps);
        const f64 *ptrs[kTaps];
        for (int i = 0; i < kTaps; ++i) {
            rows[size_t(i)].resize(static_cast<size_t>(w));
            for (auto &v : rows[size_t(i)])
                v = rng.uniform(0.0, 255.0);
            ptrs[i] = rows[size_t(i)].data();
        }
        AlignedVec<f64> o0(static_cast<size_t>(w)), o1(static_cast<size_t>(w));
        ref.weighted_sum_rows_f64(ptrs, taps, kTaps, o0.data(), w);
        avx->weighted_sum_rows_f64(ptrs, taps, kTaps, o1.data(), w);
        ASSERT_EQ(fnv1aVec(o0), fnv1aVec(o1)) << "w=" << w;
    }
}

TEST(SimdKernelTest, U8ToF64AndProductsBitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(7);
    for (i64 n : kLengths) {
        AlignedVec<u8> in(static_cast<size_t>(n));
        for (auto &v : in)
            v = u8(rng.uniformInt(0, 255));
        AlignedVec<f64> c0(static_cast<size_t>(n)), c1(static_cast<size_t>(n));
        ref.u8_to_f64(in.data(), c0.data(), n);
        avx->u8_to_f64(in.data(), c1.data(), n);
        ASSERT_EQ(fnv1aVec(c0), fnv1aVec(c1)) << "n=" << n;

        AlignedVec<f64> b(static_cast<size_t>(n));
        for (auto &v : b)
            v = rng.uniform(0.0, 255.0);
        AlignedVec<f64> a20(static_cast<size_t>(n)), b20(static_cast<size_t>(n)), ab0(static_cast<size_t>(n));
        AlignedVec<f64> a21(static_cast<size_t>(n)), b21(static_cast<size_t>(n)), ab1(static_cast<size_t>(n));
        ref.ssim_products_f64(c0.data(), b.data(), a20.data(),
                              b20.data(), ab0.data(), n);
        avx->ssim_products_f64(c0.data(), b.data(), a21.data(),
                               b21.data(), ab1.data(), n);
        ASSERT_EQ(fnv1aVec(a20), fnv1aVec(a21)) << "n=" << n;
        ASSERT_EQ(fnv1aVec(b20), fnv1aVec(b21)) << "n=" << n;
        ASSERT_EQ(fnv1aVec(ab0), fnv1aVec(ab1)) << "n=" << n;
    }
}

TEST(SimdKernelTest, MaddI16I32BitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(9);
    for (i64 n : kLengths) {
        // +3 offset: unaligned accumulator and source pointers.
        for (i64 off : {i64(0), i64(3)}) {
            AlignedVec<i16> src(static_cast<size_t>(n + off));
            for (auto &v : src)
                v = i16(rng.uniformInt(-32768, 32767));
            AlignedVec<i32> a0(static_cast<size_t>(n + off));
            for (auto &v : a0)
                v = i32(rng.uniformInt(-100000, 100000));
            AlignedVec<i32> a1 = a0;
            // Weights spanning the int8 range, including the
            // extremes where i32 products are largest.
            for (i32 w : {i32(-127), i32(-1), i32(0), i32(1),
                          i32(rng.uniformInt(-127, 127)), i32(127)}) {
                ref.madd_i16_i32(a0.data() + off, src.data() + off, w,
                                 n);
                avx->madd_i16_i32(a1.data() + off, src.data() + off,
                                  w, n);
                ASSERT_EQ(fnv1a(a0.data(), a0.size() * sizeof(i32)),
                          fnv1a(a1.data(), a1.size() * sizeof(i32)))
                    << "n=" << n << " off=" << off << " w=" << w;
            }
        }
    }
}

TEST(SimdKernelTest, BoxDown2BitExact)
{
    SKIP_WITHOUT_AVX2();
    Rng rng(8);
    for (int w : {1, 2, 3, 7, 8, 9, 16, 17, 31, 100}) {
        AlignedVec<u8> r0(static_cast<size_t>(2 * w)), r1(static_cast<size_t>(2 * w));
        for (auto &v : r0)
            v = u8(rng.uniformInt(0, 255));
        for (auto &v : r1)
            v = u8(rng.uniformInt(0, 255));
        AlignedVec<u8> o0(static_cast<size_t>(w)), o1(static_cast<size_t>(w));
        ref.box_down2_u8(r0.data(), r1.data(), o0.data(), w);
        avx->box_down2_u8(r0.data(), r1.data(), o1.data(), w);
        for (int x = 0; x < w; ++x) {
            int acc = r0[size_t(2 * x)] + r0[size_t(2 * x + 1)] +
                      r1[size_t(2 * x)] + r1[size_t(2 * x + 1)];
            ASSERT_EQ(o0[size_t(x)], u8((acc + 2) / 4)) << "x=" << x;
            ASSERT_EQ(o0[size_t(x)], o1[size_t(x)]) << "x=" << x;
        }
    }
}

/** Runs @p fn once per ISA path and returns both fingerprints. */
template <typename Fn>
std::pair<u64, u64>
runBothPaths(Fn &&fn)
{
    forceSimdLevel(SimdLevel::Scalar);
    u64 scalar = fn();
    forceSimdLevel(SimdLevel::Avx2);
    u64 avx2 = fn();
    clearForcedSimdLevel();
    return {scalar, avx2};
}

TEST(SimdEndToEndTest, ConvForwardBackwardMatch)
{
    SKIP_WITHOUT_AVX2();
    (void)ref;
    auto [s, a] = runBothPaths([] {
        Rng rng(11);
        Conv2d conv(5, 7, 3); // odd channel counts: partial ci tiles
        conv.initHe(rng);
        Tensor in(5, 29, 37); // non-multiple-of-8 spatial dims
        for (size_t i = 0; i < in.data().size(); ++i)
            in.data()[i] = f32((i * 2654435761u % 997) / 997.0);
        Tensor out = conv.forward(in);
        Tensor go(7, 29, 37);
        for (size_t i = 0; i < go.data().size(); ++i)
            go.data()[i] = f32((i % 13) - 6) / 6.0f;
        Tensor gin = conv.backward(in, go);
        u64 h = fnv1aVec(out.data());
        h = fnv1aVec(gin.data(), h);
        for (const ParamRef &p : conv.params())
            h = fnv1aVec(*p.grads, h);
        return h;
    });
    EXPECT_EQ(s, a);
}

TEST(SimdEndToEndTest, SsimMatch)
{
    SKIP_WITHOUT_AVX2();
    (void)ref;
    auto [s, a] = runBothPaths([] {
        PlaneU8 x = randomPlaneU8(157, 91, 21); // odd dimensions
        PlaneU8 y = randomPlaneU8(157, 91, 22);
        f64 v = ssim(x, y);
        return fnv1aValue(v);
    });
    EXPECT_EQ(s, a);
}

TEST(SimdEndToEndTest, MotionFieldMatch)
{
    SKIP_WITHOUT_AVX2();
    (void)ref;
    auto [s, a] = runBothPaths([] {
        PlaneU8 refp = randomPlaneU8(163, 117, 31); // odd dimensions
        PlaneU8 cur(163, 117);
        for (int y = 0; y < 117; ++y)
            for (int x = 0; x < 163; ++x)
                cur.at(x, y) = refp.atClamped(x + 3, y - 2);
        MvField mv = estimateMotion(refp, cur, 16, 7);
        return fnv1a(mv.vectors.data(),
                     mv.vectors.size() * sizeof(MotionVector));
    });
    EXPECT_EQ(s, a);
}

TEST(SimdEndToEndTest, PlaneCodecMatch)
{
    SKIP_WITHOUT_AVX2();
    (void)ref;
    auto [s, a] = runBothPaths([] {
        Rng rng(41);
        PlaneF32 plane(149, 83); // forces edge-replicated blocks
        for (auto &v : plane.data())
            v = f32(rng.uniform(-64.0, 64.0));
        ByteWriter writer;
        PlaneF32 recon = encodePlane(plane, 8, writer);
        u64 h = fnv1aVec(writer.bytes());
        h = fnv1aVec(recon.data(), h);
        ByteReader reader(writer.bytes());
        PlaneF32 dec = decodePlane(plane.size(), 8, reader);
        return fnv1aVec(dec.data(), h);
    });
    EXPECT_EQ(s, a);
}

TEST(SimdEndToEndTest, DownsampleMatch)
{
    SKIP_WITHOUT_AVX2();
    (void)ref;
    auto [s, a] = runBothPaths([] {
        PlaneU8 in = randomPlaneU8(322, 178, 51);
        PlaneU8 down = boxDownsample(in, 2);
        return fnv1aVec(down.data());
    });
    EXPECT_EQ(s, a);
}

TEST(QuantTableTest, CachedTableMatchesDirectComputation)
{
    for (int qp : {1, 4, 8, 48, 300}) {
        const QuantTable &t = quantTableForQp(qp);
        EXPECT_EQ(t.qp, qp);
        EXPECT_TRUE(isSimdAligned(t.step.data()));
        for (int v = 0; v < 8; ++v) {
            for (int u = 0; u < 8; ++u) {
                f32 expected = f32(qp) * (1.0f + 0.14f * f32(u + v));
                EXPECT_EQ(t.step[size_t(v * 8 + u)], expected)
                    << "qp=" << qp << " u=" << u << " v=" << v;
            }
        }
        // Same object on repeat lookups (cached, not rebuilt).
        EXPECT_EQ(&t, &quantTableForQp(qp));
    }
}

} // namespace
} // namespace gssr
