/**
 * @file
 * Tests for the server operating modes: supersampled (SSAA)
 * rendering, the HR ground-truth reuse path, the accounting-only
 * proxy fast path (RoI/byte scaling), and the rate-controlled
 * encoder integration.
 */

#include <gtest/gtest.h>

#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "pipeline/server.hh"

namespace gssr
{
namespace
{

ServerConfig
baseConfig()
{
    ServerConfig config;
    config.lr_size = {192, 96};
    config.codec.gop_size = 4;
    return config;
}

TEST(ServerModesTest, SupersampledRenderEqualsDownsampledHr)
{
    // With keep_hr_render, the LR frame must be exactly the box
    // downsample of the returned HR render.
    GameWorld world(GameId::G2_FarCry5, 3);
    ServerConfig config = baseConfig();
    config.supersample = 2;
    config.keep_hr_render = true;
    GameStreamServer server(world, config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    ServerFrameOutput out = server.nextFrame();
    ASSERT_FALSE(out.hr_render.empty());
    EXPECT_EQ(out.hr_render.size(), (Size{384, 192}));
    EXPECT_EQ(out.rendered.color, boxDownsample(out.hr_render, 2));
}

TEST(ServerModesTest, SupersamplingReducesAliasing)
{
    // The SSAA render must be closer to the downsampled HR truth
    // than a point-sampled render of the same scene.
    GameWorld world(GameId::G10_ForzaHorizon5, 3);
    Scene scene = world.sceneAt(0.6);
    ColorImage truth = boxDownsample(
        renderScene(scene, {384, 192}).color, 2);
    ColorImage point_sampled = renderScene(scene, {192, 96}).color;
    // SSAA output == truth by construction; the point-sampled render
    // differs measurably (aliasing).
    EXPECT_LT(psnr(point_sampled, truth), 60.0);
    EXPECT_GT(meanSquaredError(point_sampled, truth), 1.0);
}

TEST(ServerModesTest, KeepHrRenderRequiresMatchingSupersample)
{
    GameWorld world(GameId::G2_FarCry5, 3);
    ServerConfig config = baseConfig();
    config.supersample = 1;
    config.keep_hr_render = true;
    GameStreamServer server(world, config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    EXPECT_THROW(server.nextFrame(), PanicError);
}

TEST(ServerModesTest, ProxyModeScalesRoiAndBytes)
{
    GameWorld world(GameId::G1_MetroExodus, 3);

    ServerConfig config = baseConfig();
    config.lr_size = {1280, 720};
    config.proxy_size = {320, 180};
    config.supersample = 1;
    GameStreamServer server(world, config,
                            ServerProfile::gamingWorkstation(),
                            {300, 300});
    ServerFrameOutput out = server.nextFrame();

    // The RoI is reported in stream (720p) coordinates at the
    // negotiated window size.
    ASSERT_TRUE(out.roi.has_value());
    EXPECT_EQ(out.roi->width, 300);
    EXPECT_EQ(out.roi->height, 300);
    EXPECT_TRUE((Rect{0, 0, 1280, 720}.contains(*out.roi)));

    // Reported bytes are scaled up to the stream size the 16x-area
    // native encode would produce (sublinear in area, see
    // proxyStreamBytes) — more than the raw payload, less than a
    // linear 16x.
    EXPECT_EQ(out.trace.encoded_bytes,
              proxyStreamBytes(out.encoded.sizeBytes(), 16.0));
    EXPECT_GT(out.trace.encoded_bytes, out.encoded.sizeBytes() * 4);
    EXPECT_LT(out.trace.encoded_bytes, out.encoded.sizeBytes() * 16);
}

TEST(ServerModesTest, ProxyBytesTrackNativeEncodeAcrossResolutions)
{
    // The proxy accounting model claims encoded size scales with
    // (area ratio)^0.78. Validate that claim against the *actual*
    // encoder: encode the same content natively at 640x360 and
    // through 320x180 and 160x90 proxies, and require the charged
    // proxy bytes to land within a tolerance band of the native
    // GOP total. The exponent was fit on the codec's own output, so
    // a drifting codec (or a broken proxyStreamBytes) shows up here.
    const Size native{640, 360};
    const Size proxies[] = {{320, 180}, {160, 90}};
    const int frames = 8;

    auto gopBytes = [&](Size proxy) {
        GameWorld world(GameId::G1_MetroExodus, 3);
        ServerConfig config = baseConfig();
        config.lr_size = native;
        config.supersample = 1;
        if (proxy.area() > 0)
            config.proxy_size = proxy;
        GameStreamServer server(world, config,
                                ServerProfile::gamingWorkstation(),
                                {64, 64});
        size_t total = 0;
        for (int i = 0; i < frames; ++i)
            total += server.nextFrame().trace.encoded_bytes;
        return f64(total);
    };

    const f64 native_bytes = gopBytes({0, 0});
    ASSERT_GT(native_bytes, 0.0);
    for (Size proxy : proxies) {
        const f64 charged = gopBytes(proxy);
        const f64 ratio = charged / native_bytes;
        EXPECT_GT(ratio, 0.80)
            << "proxy " << proxy.width << "x" << proxy.height
            << " undershoots the native encode";
        EXPECT_LT(ratio, 1.25)
            << "proxy " << proxy.width << "x" << proxy.height
            << " overshoots the native encode";
    }
}

TEST(ServerModesTest, ProxyLargerThanStreamRejected)
{
    GameWorld world(GameId::G1_MetroExodus, 3);
    ServerConfig config = baseConfig();
    config.proxy_size = {1280, 720}; // larger than lr_size 192x96
    EXPECT_THROW(GameStreamServer(world, config,
                                  ServerProfile::gamingWorkstation(),
                                  {48, 48}),
                 PanicError);
}

TEST(ServerModesTest, RateControlShrinksHeavyStreams)
{
    GameWorld world(GameId::G5_GrandTheftAutoV, 3);
    ServerConfig config = baseConfig();
    config.codec.gop_size = 3;
    config.codec.qp = 4;
    config.target_bitrate_mbps = 1.0; // very tight for this content
    GameStreamServer server(world, config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    size_t first_gop = 0, third_gop = 0;
    for (int i = 0; i < 9; ++i) {
        ServerFrameOutput out = server.nextFrame();
        if (i < 3)
            first_gop += out.trace.encoded_bytes;
        if (i >= 6)
            third_gop += out.trace.encoded_bytes;
    }
    EXPECT_LT(third_gop, first_gop);
}

TEST(ServerModesTest, TimebaseAdvancesWithFps)
{
    GameWorld world(GameId::G3_Witcher3, 3);
    ServerConfig config = baseConfig();
    GameStreamServer server(world, config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    ServerFrameOutput f0 = server.nextFrame();
    ServerFrameOutput f1 = server.nextFrame();
    EXPECT_DOUBLE_EQ(f0.time_s, 0.0);
    EXPECT_NEAR(f1.time_s, 1.0 / 60.0, 1e-12);
    EXPECT_EQ(server.frameCount(), 2);
}

} // namespace
} // namespace gssr
