/**
 * @file
 * Unit tests for src/metrics: PSNR, SSIM and the LPIPS-proxy
 * perceptual metric, including the monotonicity properties the
 * quality experiments rely on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "metrics/perceptual.hh"
#include "metrics/psnr.hh"
#include "metrics/ssim.hh"
#include "sr/interpolate.hh"

namespace gssr
{
namespace
{

/** Deterministic textured test image. */
ColorImage
makeTexturedImage(int w, int h, u64 seed)
{
    Rng rng(seed);
    ColorImage img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            u8 base = u8(120 + 60 * std::sin(x * 0.7) *
                                   std::cos(y * 0.5));
            u8 noise = u8(rng.uniformInt(0, 40));
            img.setPixel(x, y, u8(base + noise), base,
                         u8(255 - base));
        }
    }
    return img;
}

/** Add uniform noise of amplitude @p amp to every channel. */
ColorImage
addNoise(const ColorImage &img, int amp, u64 seed)
{
    Rng rng(seed);
    ColorImage out = img;
    for (int c = 0; c < 3; ++c) {
        for (auto &v : out.channel(c).data()) {
            int nv = int(v) + rng.uniformInt(-amp, amp);
            v = u8(nv < 0 ? 0 : (nv > 255 ? 255 : nv));
        }
    }
    return out;
}

/** Blur by downscaling and re-upscaling (detail loss). */
ColorImage
blurByResample(const ColorImage &img, int factor)
{
    Size small{img.width() / factor, img.height() / factor};
    return resizeImage(resizeImage(img, small), img.size());
}

TEST(PsnrTest, IdenticalImagesAreInfinite)
{
    ColorImage img = makeTexturedImage(32, 32, 1);
    EXPECT_TRUE(std::isinf(psnr(img, img)));
    EXPECT_DOUBLE_EQ(meanSquaredError(img, img), 0.0);
}

TEST(PsnrTest, KnownUniformError)
{
    ColorImage a(8, 8);
    ColorImage b(8, 8);
    a.fill(100, 100, 100);
    b.fill(110, 110, 110);
    // MSE = 100 -> PSNR = 10*log10(255^2/100) = 28.13 dB.
    EXPECT_NEAR(meanSquaredError(a, b), 100.0, 1e-9);
    EXPECT_NEAR(psnr(a, b), 28.13, 0.01);
}

TEST(PsnrTest, MoreNoiseMeansLowerPsnr)
{
    ColorImage img = makeTexturedImage(64, 64, 2);
    f64 psnr_small = psnr(img, addNoise(img, 5, 3));
    f64 psnr_large = psnr(img, addNoise(img, 25, 3));
    EXPECT_GT(psnr_small, psnr_large);
    EXPECT_GT(psnr_small, 30.0);
}

TEST(PsnrTest, SizeMismatchThrows)
{
    ColorImage a(8, 8), b(8, 9);
    EXPECT_THROW(psnr(a, b), PanicError);
}

TEST(SsimTest, IdenticalImagesScoreOne)
{
    ColorImage img = makeTexturedImage(48, 48, 4);
    EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
}

TEST(SsimTest, DegradationLowersSsim)
{
    ColorImage img = makeTexturedImage(64, 64, 5);
    f64 s_light = ssim(img, addNoise(img, 8, 6));
    f64 s_heavy = ssim(img, addNoise(img, 40, 6));
    EXPECT_GT(s_light, s_heavy);
    EXPECT_LT(s_heavy, 1.0);
}

TEST(SsimTest, RangeIsBounded)
{
    ColorImage a = makeTexturedImage(32, 32, 7);
    ColorImage b = makeTexturedImage(32, 32, 8);
    f64 s = ssim(a, b);
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
}

TEST(PerceptualTest, IdenticalImagesNearZero)
{
    PerceptualMetric metric;
    ColorImage img = makeTexturedImage(64, 64, 9);
    EXPECT_LT(metric.distance(img, img), 1e-9);
}

TEST(PerceptualTest, RangeWithinUnitInterval)
{
    PerceptualMetric metric;
    ColorImage a = makeTexturedImage(64, 64, 10);
    ColorImage b = makeTexturedImage(64, 64, 11);
    f64 d = metric.distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
}

TEST(PerceptualTest, MonotoneUnderDetailLoss)
{
    // Successive interpolation blur (what NEMO's non-reference
    // reconstruction accumulates) must increase the distance.
    PerceptualMetric metric;
    ColorImage img = makeTexturedImage(96, 96, 12);
    f64 d2 = metric.distance(img, blurByResample(img, 2));
    f64 d4 = metric.distance(img, blurByResample(img, 4));
    EXPECT_GT(d2, 0.0);
    EXPECT_GT(d4, d2);
}

TEST(PerceptualTest, DeterministicForSameSeed)
{
    PerceptualMetric m1;
    PerceptualMetric m2;
    ColorImage a = makeTexturedImage(48, 48, 13);
    ColorImage b = addNoise(a, 10, 14);
    EXPECT_DOUBLE_EQ(m1.distance(a, b), m2.distance(a, b));
}

TEST(PerceptualTest, SymmetricEnough)
{
    PerceptualMetric metric;
    ColorImage a = makeTexturedImage(48, 48, 15);
    ColorImage b = addNoise(a, 15, 16);
    EXPECT_NEAR(metric.distance(a, b), metric.distance(b, a), 1e-12);
}

TEST(PerceptualTest, SizeMismatchThrows)
{
    PerceptualMetric metric;
    ColorImage a(32, 32), b(16, 16);
    EXPECT_THROW(metric.distance(a, b), PanicError);
}

} // namespace
} // namespace gssr
