/**
 * @file
 * Golden-trace regression suite: two canonical 30-frame sessions
 * (the GameStreamSR design and the NEMO baseline) are run end to end
 * with pixel computation, resilience and quality measurement on, and
 * their 64-bit session fingerprints (sessionFingerprint — every
 * stage record, delivery flag, recovery event, byte count and
 * quality sample) plus mean PSNR are pinned against checked-in
 * goldens. Any behavioral change to the server, codec, channel,
 * client, resilience or quality paths moves the fingerprint and
 * fails here.
 *
 * To regenerate after an *intentional* behavior change, run
 *   ./tests/test_golden_trace
 * and copy the "golden:" lines it prints into kGoldens below.
 *
 * Also pins determinism itself: the same session re-run in-process,
 * and run under 1 vs. 4 worker threads, must produce bit-identical
 * fingerprints (the deterministic thread-pool contract).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/parallel.hh"
#include "golden_sessions.hh"
#include "obs/telemetry.hh"
#include "pipeline/session.hh"

namespace gssr
{
namespace
{

using golden::canonicalConfig;
using golden::Golden;
using golden::kGoldens;

class GoldenTraceTest : public testing::TestWithParam<Golden>
{
};

TEST_P(GoldenTraceTest, SessionMatchesCheckedInGolden)
{
    const Golden &golden = GetParam();
    SessionResult result = runSession(canonicalConfig(golden.design));
    const u64 fingerprint = sessionFingerprint(result);
    const f64 mean_psnr = result.meanPsnrDb();

    // Printed on every run so an intentional change can be copied
    // straight back into kGoldens.
    std::printf("golden: {\"%s\", DesignKind::%s, 0x%016llxull, "
                "%.12f},\n",
                golden.name,
                golden.design == DesignKind::Nemo ? "Nemo"
                                                  : "GameStreamSR",
                (unsigned long long)fingerprint, mean_psnr);

    EXPECT_EQ(fingerprint, golden.fingerprint)
        << "the " << golden.name
        << " session trace changed; if intentional, regenerate the "
           "goldens (see file comment)";
    EXPECT_NEAR(mean_psnr, golden.mean_psnr_db, 1e-9);

    // Sanity on the golden content itself: the burst exercised the
    // resilience machinery and quality was measured.
    EXPECT_GT(result.resilience.frames_dropped, 0);
    EXPECT_GT(result.resilience.frames_concealed, 0);
    EXPECT_EQ(result.traces.size(), 30u);
    EXPECT_EQ(result.quality.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(Designs, GoldenTraceTest,
                         testing::ValuesIn(kGoldens),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST_P(GoldenTraceTest, TelemetryExportersDoNotPerturbGolden)
{
    // Observability must be provably non-perturbing: the exact
    // checked-in fingerprints, with the metrics registry AND the span
    // exporter attached and recording the whole session.
    const Golden &golden = GetParam();
    obs::Telemetry telemetry(/*spans=*/true);
    SessionConfig config = canonicalConfig(golden.design);
    config.telemetry = &telemetry;
    SessionResult result = runSession(config);

    EXPECT_EQ(sessionFingerprint(result), golden.fingerprint)
        << "attaching telemetry changed the " << golden.name
        << " session trace — instrumentation must be write-only";

    // And the instrumentation actually observed the run.
    const obs::MetricsRegistry &reg = telemetry.registry();
    auto frames_total = reg.find("fleet.frames_total");
    ASSERT_TRUE(frames_total.has_value());
    EXPECT_EQ(reg.counterValue(*frames_total), 30);
    EXPECT_FALSE(telemetry.spanBuffer().events().empty());
}

TEST_P(GoldenTraceTest, FaultFreeStressAndLadderDoNotPerturbGolden)
{
    // The degradation ladder is enabled by default and the thermal/
    // DVFS stress model is forced on here — yet with no scripted
    // device faults the session must reproduce the exact checked-in
    // fingerprints: below the thermal knee every throttle factor is
    // exactly 1.0, the tier-0 ladder only observes, and the fault
    // draws consume a separate RNG stream. This is the "strict no-op
    // at tier 0" contract.
    const Golden &golden = GetParam();
    SessionConfig config = canonicalConfig(golden.design);
    config.device_stress.enabled = true;
    config.device_faults = DeviceFaultScenario::none();
    config.ladder.enabled = true;
    SessionResult result = runSession(config);

    EXPECT_EQ(sessionFingerprint(result), golden.fingerprint)
        << "fault-free stress model / ladder perturbed the "
        << golden.name << " session trace";
    // The short, cool session never throttles or degrades.
    EXPECT_EQ(result.degradation.ladder_step_downs, 0);
    EXPECT_EQ(result.degradation.frames_held, 0);
    EXPECT_EQ(result.degradation.final_tier, 0);
    EXPECT_LT(result.degradation.peak_temperature_c,
              config.device_stress.thermal.npu.knee_c);
}

TEST_P(GoldenTraceTest, Fp32QuantizationDefaultDoesNotPerturbGolden)
{
    // The quantized inference path (DESIGN.md §14) is compiled in and
    // reachable from SessionConfig, but the default precision is Fp32
    // and every precision-aware call site must reduce to the original
    // expressions there — the checked-in fingerprints are the proof.
    // Setting the knob explicitly (rather than relying on the struct
    // default) pins the Fp32 branch itself, not just the default.
    const Golden &golden = GetParam();
    SessionConfig config = canonicalConfig(golden.design);
    config.sr_precision = Precision::Fp32;
    EXPECT_EQ(sessionFingerprint(runSession(config)),
              golden.fingerprint)
        << "explicit Fp32 precision perturbed the " << golden.name
        << " session trace — the quantization plumbing must be a "
           "strict no-op at Fp32";
}

TEST(GoldenTraceTest, QuantizedPrecisionMovesTheFingerprint)
{
    // The converse guard: the precision knob is live. A hybrid-int8
    // session must diverge from the golden (different SR pixels and
    // different NPU latency/power accounting), so the Fp32 guard
    // above cannot pass vacuously.
    SessionConfig config = canonicalConfig(DesignKind::GameStreamSR);
    config.sr_precision = Precision::HybridInt8;
    SessionResult result = runSession(config);
    EXPECT_NE(sessionFingerprint(result), kGoldens[0].fingerprint);
    // Quality stays in the same regime — quantized, not broken.
    EXPECT_GT(result.meanPsnrDb(), kGoldens[0].mean_psnr_db - 1.0);
}

TEST(GoldenTraceTest, RerunIsBitIdentical)
{
    SessionConfig config = canonicalConfig(DesignKind::GameStreamSR);
    const u64 first = sessionFingerprint(runSession(config));
    const u64 second = sessionFingerprint(runSession(config));
    EXPECT_EQ(first, second);
}

TEST(GoldenTraceTest, FingerprintSeesStageLatencyChanges)
{
    SessionConfig config = canonicalConfig(DesignKind::GameStreamSR);
    const u64 base = sessionFingerprint(runSession(config));
    config.server_profile.render_720p_ms += 0.25;
    EXPECT_NE(base, sessionFingerprint(runSession(config)));
}

TEST(ThreadDeterminismTest, SessionFingerprintIndependentOfThreads)
{
    // The deterministic thread-pool contract, end to end: a short
    // pixel-computing session (render, downsample, codec transforms,
    // SR inference, PSNR) is bit-identical under 1 and 4 workers.
    SessionConfig config = canonicalConfig(DesignKind::GameStreamSR);
    config.frames = 6;
    config.measure_quality = true;
    config.quality_stride = 2;

    const int ambient = parallelThreadCount();
    setParallelThreadCount(1);
    const u64 single = sessionFingerprint(runSession(config));
    setParallelThreadCount(4);
    const u64 quad = sessionFingerprint(runSession(config));
    setParallelThreadCount(ambient);

    EXPECT_EQ(single, quad)
        << "session diverges across worker-thread counts";
}

} // namespace
} // namespace gssr
