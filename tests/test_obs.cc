/**
 * @file
 * Observability subsystem tests: metrics-registry semantics
 * (get-or-create, hot-path mutators, reset), histogram percentile
 * edge cases against the bucket-resolution bound, the shared
 * stats::Summary helpers, JsonWriter well-formedness, Chrome-trace /
 * JSONL span serialization, the schema-versioned bench Report, and
 * the central contract: attaching telemetry to sessions and fleets
 * is bit-exactly non-perturbing (the golden suite pins the same for
 * the checked-in canonical sessions).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/span.hh"
#include "obs/telemetry.hh"
#include "pipeline/fleet.hh"
#include "pipeline/session.hh"

namespace gssr
{
namespace
{

using obs::HistogramLayout;
using obs::JsonWriter;
using obs::MetricId;
using obs::MetricsRegistry;
using obs::SpanEvent;
using obs::SpanExporter;
using obs::SpanPhase;

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStableIds)
{
    MetricsRegistry reg;
    MetricId a = reg.counter("frames");
    MetricId b = reg.gauge("rate");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.counter("frames"), a);
    EXPECT_EQ(reg.gauge("rate"), b);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name(a), "frames");
    EXPECT_EQ(reg.kind(a), obs::MetricKind::Counter);
    EXPECT_EQ(reg.kind(b), obs::MetricKind::Gauge);
}

TEST(MetricsRegistryTest, CounterAndGaugeMutators)
{
    MetricsRegistry reg;
    MetricId c = reg.counter("c");
    MetricId g = reg.gauge("g");
    reg.add(c);
    reg.add(c, 41);
    reg.set(g, 2.5);
    reg.set(g, 7.25); // last write wins
    EXPECT_EQ(reg.counterValue(c), 42);
    EXPECT_DOUBLE_EQ(reg.gaugeValue(g), 7.25);
}

TEST(MetricsRegistryTest, FindOnlyLooksUp)
{
    MetricsRegistry reg;
    EXPECT_FALSE(reg.find("missing").has_value());
    MetricId c = reg.counter("present");
    auto found = reg.find("present");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, c);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsRegistrations)
{
    MetricsRegistry reg;
    MetricId c = reg.counter("c");
    MetricId h =
        reg.histogram("h", HistogramLayout::linear(0, 10, 10));
    reg.add(c, 5);
    reg.observe(h, 3.0);
    reg.reset();
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.counterValue(c), 0);
    EXPECT_EQ(reg.counterValue(h), 0);
    reg.observe(h, 4.0);
    EXPECT_EQ(reg.counterValue(h), 1);
    EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, 50.0), 4.0);
}

// ---------------------------------------------------------------------
// Histogram percentiles
// ---------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZero)
{
    MetricsRegistry reg;
    MetricId h =
        reg.histogram("h", HistogramLayout::linear(0, 100, 50));
    EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, 50.0), 0.0);
    stats::Summary s = reg.histogramSummary(h);
    EXPECT_EQ(s.count, 0);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile)
{
    MetricsRegistry reg;
    MetricId h =
        reg.histogram("h", HistogramLayout::linear(0, 100, 50));
    reg.observe(h, 37.5);
    for (f64 p : {0.0, 1.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, p), 37.5);
}

TEST(HistogramTest, PercentilesClampToObservedMinMax)
{
    MetricsRegistry reg;
    MetricId h =
        reg.histogram("h", HistogramLayout::linear(0, 100, 50));
    reg.observe(h, 12.25);
    reg.observe(h, 30.0);
    reg.observe(h, 61.5);
    EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, 0.0), 12.25);
    EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, 100.0), 61.5);
    stats::Summary s = reg.histogramSummary(h);
    EXPECT_DOUBLE_EQ(s.min, 12.25);
    EXPECT_DOUBLE_EQ(s.max, 61.5);
    EXPECT_EQ(s.count, 3);
    EXPECT_NEAR(s.mean, (12.25 + 30.0 + 61.5) / 3.0, 1e-12);
}

TEST(HistogramTest, PercentileWithinOneBucketOfExact)
{
    // 1000 uniform samples over [0, 100) into 2 ms buckets: every
    // reported percentile must sit within one bucket width of the
    // exact rank-based answer.
    MetricsRegistry reg;
    const HistogramLayout layout = HistogramLayout::linear(0, 100, 50);
    MetricId h = reg.histogram("h", layout);
    std::vector<f64> samples;
    for (int i = 0; i < 1000; ++i) {
        f64 v = f64(i) * 0.1;
        samples.push_back(v);
        reg.observe(h, v);
    }
    std::sort(samples.begin(), samples.end());
    for (f64 p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0}) {
        f64 exact =
            samples[size_t(p / 100.0 * f64(samples.size() - 1))];
        EXPECT_NEAR(reg.histogramPercentile(h, p), exact,
                    layout.bucketWidth())
            << "p" << p;
    }
}

TEST(HistogramTest, OutOfRangeSamplesLandInEdgeBuckets)
{
    MetricsRegistry reg;
    MetricId h =
        reg.histogram("h", HistogramLayout::linear(0, 10, 10));
    reg.observe(h, -5.0); // below lo -> bucket 0
    reg.observe(h, 50.0); // above hi -> last bucket
    EXPECT_EQ(reg.counterValue(h), 2);
    EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, 0.0), -5.0);
    EXPECT_DOUBLE_EQ(reg.histogramPercentile(h, 100.0), 50.0);
}

// ---------------------------------------------------------------------
// stats::Summary sharing
// ---------------------------------------------------------------------

TEST(StatsSummaryTest, SampleStatsAndSummarizeAgree)
{
    std::vector<f64> values = {4.0, 1.0, 3.0, 2.0, 5.0};
    SampleStats stats;
    for (f64 v : values)
        stats.add(v);
    stats::Summary a = stats.summary();
    stats::Summary b = stats::summarize(values);
    EXPECT_EQ(a.count, b.count);
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
    EXPECT_DOUBLE_EQ(a.min, b.min);
    EXPECT_DOUBLE_EQ(a.max, b.max);
    EXPECT_DOUBLE_EQ(a.p50, b.p50);
    EXPECT_DOUBLE_EQ(a.p99, b.p99);
    EXPECT_DOUBLE_EQ(a.p50, 3.0);
}

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

TEST(JsonWriterTest, EmitsWellFormedNestedJson)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("name", "bench");
    w.field("n", 42);
    w.field("ratio", 0.5, 3);
    w.field("ok", true);
    w.hexField("fp", u64(0xdeadbeefull));
    w.key("rows");
    w.beginArray();
    w.value(i64(1));
    w.value("two");
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    const std::string s = out.str();
    EXPECT_NE(s.find("\"name\": \"bench\""), std::string::npos);
    EXPECT_NE(s.find("\"ratio\": 0.500"), std::string::npos);
    EXPECT_NE(s.find("\"fp\": \"00000000deadbeef\""),
              std::string::npos);
}

TEST(JsonWriterTest, EscapesStrings)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("s", "a\"b\\c\nd");
    w.endObject();
    EXPECT_NE(out.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

// ---------------------------------------------------------------------
// SpanExporter
// ---------------------------------------------------------------------

SpanExporter &
recordSampleSpans(SpanExporter &spans)
{
    spans.begin("Render", "ServerGpu", 0, 0.0, 1.5);
    spans.end("Render", "ServerGpu", 0, 4.0);
    spans.begin("Decode", "ClientHwDecoder", 1, 4.0);
    spans.end("Decode", "ClientHwDecoder", 1, 9.5);
    spans.instant("FrameDropped", "recovery", 1, 9.5);
    spans.counter("fleet.p99_mtp_ms", -1, 16.0, 72.25);
    return spans;
}

TEST(SpanExporterTest, RecordsEventsInOrderWithInternedStrings)
{
    SpanExporter spans;
    recordSampleSpans(spans);
    const auto &events = spans.events();
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(events[0].phase, SpanPhase::Begin);
    EXPECT_EQ(events[1].phase, SpanPhase::End);
    EXPECT_EQ(spans.string(events[0].name), "Render");
    // begin/end of the same span intern to the same id.
    EXPECT_EQ(events[0].name, events[1].name);
    EXPECT_EQ(events[4].phase, SpanPhase::Instant);
    EXPECT_EQ(events[5].phase, SpanPhase::Counter);
    EXPECT_EQ(events[5].track, -1);
    EXPECT_DOUBLE_EQ(events[5].value, 72.25);
}

TEST(SpanExporterTest, ChromeTraceHasMatchingBeginEndPairs)
{
    SpanExporter spans;
    recordSampleSpans(spans);
    std::ostringstream out;
    spans.writeChromeTrace(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);

    auto countOf = [&s](const std::string &needle) {
        size_t n = 0;
        for (size_t pos = s.find(needle); pos != std::string::npos;
             pos = s.find(needle, pos + needle.size()))
            ++n;
        return n;
    };
    EXPECT_EQ(countOf("\"ph\": \"B\""), countOf("\"ph\": \"E\""));
    EXPECT_EQ(countOf("\"ph\": \"B\""), 2u);
    EXPECT_EQ(countOf("\"ph\": \"i\""), 1u);
    EXPECT_EQ(countOf("\"ph\": \"C\""), 1u);
    // ts is microseconds: the 4.0 ms end event serializes as 4000.
    EXPECT_NE(s.find("4000"), std::string::npos);
}

TEST(SpanExporterTest, JsonlRoundTripsEveryEvent)
{
    SpanExporter spans;
    recordSampleSpans(spans);
    std::ostringstream out;
    spans.writeJsonl(out);
    std::istringstream in(out.str());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++lines;
    }
    EXPECT_EQ(lines, spans.events().size());
    EXPECT_NE(out.str().find("\"name\": \"fleet.p99_mtp_ms\""),
              std::string::npos);
}

TEST(SpanExporterTest, ClearKeepsInternedStrings)
{
    SpanExporter spans;
    spans.instant("a", "cat", 0, 1.0);
    const u32 name_id = spans.events()[0].name;
    spans.clear();
    EXPECT_TRUE(spans.events().empty());
    spans.instant("a", "cat", 0, 2.0);
    EXPECT_EQ(spans.events()[0].name, name_id);
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

TEST(ReportTest, WritesSchemaVersionedHeader)
{
    const char *path = "test_obs_report.json";
    {
        obs::Report report(path, "unit_test", /*smoke=*/true);
        ASSERT_TRUE(report.ok());
        report.json().field("payload", 7);
        report.close();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();
    std::remove(path);
    EXPECT_NE(s.find("\"schema\": \"gssr.bench.v1\""),
              std::string::npos);
    EXPECT_NE(s.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(s.find("\"bench\": \"unit_test\""), std::string::npos);
    EXPECT_NE(s.find("\"smoke\": true"), std::string::npos);
    EXPECT_NE(s.find("\"payload\": 7"), std::string::npos);
    EXPECT_EQ(s.back(), '\n');
}

TEST(ReportTest, UnwritablePathIsInert)
{
    obs::Report report("/nonexistent-dir/x.json", "unit_test", false);
    EXPECT_FALSE(report.ok());
    report.json().field("ignored", 1); // must not crash
    report.close();
}

// ---------------------------------------------------------------------
// Non-perturbation: the API contract the golden suite pins for the
// canonical sessions, checked here on fast accounting runs.
// ---------------------------------------------------------------------

SessionConfig
fastAccountingConfig()
{
    SessionConfig config;
    config.frames = 48;
    config.lr_size = {320, 180};
    config.compute_pixels = false;
    config.server_proxy_size = {128, 72};
    config.target_bitrate_mbps = 8.0;
    config.channel = ChannelConfig::wifiBursty();
    config.resilience.nack = true;
    config.resilience.aimd = true;
    return config;
}

TEST(TelemetryTest, SessionIsBitIdenticalWithTelemetryAttached)
{
    const u64 bare =
        sessionFingerprint(runSession(fastAccountingConfig()));

    obs::Telemetry telemetry(/*spans=*/true);
    SessionConfig instrumented = fastAccountingConfig();
    instrumented.telemetry = &telemetry;
    const u64 observed =
        sessionFingerprint(runSession(instrumented));

    EXPECT_EQ(bare, observed);
    EXPECT_FALSE(telemetry.spanBuffer().events().empty());
}

TEST(TelemetryTest, SessionCountersMatchResilienceStats)
{
    obs::Telemetry telemetry;
    SessionConfig config = fastAccountingConfig();
    config.telemetry = &telemetry;
    SessionResult result = runSession(config);

    const MetricsRegistry &reg = telemetry.registry();
    auto counter = [&](const char *name) {
        auto id = reg.find(name);
        return id ? reg.counterValue(*id) : i64(-1);
    };
    const ResilienceStats &s = result.resilience;
    EXPECT_EQ(counter("fleet.frames_total"),
              i64(result.traces.size()));
    EXPECT_EQ(counter("fleet.frames_delivered"), s.frames_delivered);
    EXPECT_EQ(counter("fleet.frames_dropped"), s.frames_dropped);
    EXPECT_EQ(counter("fleet.frames_concealed"), s.frames_concealed);
    EXPECT_EQ(counter("fleet.nacks_sent"), s.nacks_sent);
    EXPECT_EQ(counter("fleet.aimd_backoffs"), s.aimd_backoffs);
    // Channel-level drop causes sum to the channel's drop count.
    i64 cause_sum = 0;
    for (const char *name :
         {"net.drops.congestion", "net.drops.burst",
          "net.drops.random", "net.drops.scenario"}) {
        auto id = reg.find(name);
        if (id)
            cause_sum += reg.counterValue(*id);
    }
    EXPECT_EQ(cause_sum, s.frames_dropped);
}

TEST(TelemetryTest, FleetRunIsBitIdenticalWithTelemetryAttached)
{
    auto runFleet = [](obs::Telemetry *telemetry) {
        FleetServer fleet(ServerProfile::edgeRack(4),
                          SchedulePolicy::Edf);
        if (telemetry)
            fleet.setTelemetry(telemetry);
        for (int i = 0; i < 6; ++i)
            fleet.admit(fleetMixSessionConfig(i));
        return fleet.run(30);
    };

    const FleetResult bare = runFleet(nullptr);
    obs::Telemetry telemetry(/*spans=*/true);
    const FleetResult observed = runFleet(&telemetry);
    EXPECT_EQ(bare.fingerprint, observed.fingerprint);

    // The live fleet gauges were refreshed on the final tick.
    const MetricsRegistry &reg = telemetry.registry();
    auto gauge = [&](const char *name) {
        auto id = reg.find(name);
        return id ? reg.gaugeValue(*id) : -1.0;
    };
    EXPECT_DOUBLE_EQ(gauge("fleet.tick"), 29.0);
    EXPECT_DOUBLE_EQ(gauge("fleet.sessions"), 6.0);
    EXPECT_GT(gauge("fleet.p99_mtp_ms"), 0.0);
    EXPECT_GE(gauge("fleet.shed_rate"), 0.0);
    EXPECT_GE(gauge("fleet.conceal_rate"), 0.0);
    // Every tenant's spans landed on its own track; tracks are the
    // tenant ids, so a fleet trace renders one swimlane per session.
    std::vector<i32> tracks;
    for (const SpanEvent &e : telemetry.spanBuffer().events())
        if (e.track >= 0 &&
            std::find(tracks.begin(), tracks.end(), e.track) ==
                tracks.end())
            tracks.push_back(e.track);
    EXPECT_EQ(tracks.size(), 6u);
}

TEST(TelemetryTest, RegistryJsonDumpCoversAllKinds)
{
    obs::Telemetry telemetry;
    MetricsRegistry &reg = telemetry.registry();
    reg.add(reg.counter("c"), 3);
    reg.set(reg.gauge("g"), 1.5);
    reg.observe(
        reg.histogram("h", HistogramLayout::linear(0, 10, 10)), 2.0);

    std::ostringstream out;
    JsonWriter w(out);
    reg.writeJson(w);
    EXPECT_TRUE(w.complete());
    const std::string s = out.str();
    EXPECT_NE(s.find("\"c\": 3"), std::string::npos);
    EXPECT_NE(s.find("\"g\": 1.5"), std::string::npos);
    EXPECT_NE(s.find("\"p99\""), std::string::npos);
}

} // namespace
} // namespace gssr
