/**
 * @file
 * Unit tests for src/net: channel presets, transmission latency
 * behaviour, loss/congestion drop model and determinism.
 */

#include <gtest/gtest.h>

#include "net/channel.hh"

namespace gssr
{
namespace
{

TEST(ChannelConfigTest, PresetsEncodeTheBandwidthLatencyTradeoff)
{
    ChannelConfig embb = ChannelConfig::fiveGEmbb();
    ChannelConfig urllc = ChannelConfig::fiveGUrllc();
    // Sec. II-A: eMBB is high-bandwidth/high-latency, URLLC the
    // opposite.
    EXPECT_GT(embb.bandwidth_mbps, urllc.bandwidth_mbps * 5);
    EXPECT_GT(embb.rtt_ms, urllc.rtt_ms * 3);
}

TEST(ChannelTest, DeterministicForSameSeed)
{
    NetworkChannel a(ChannelConfig::wifi(), 42);
    NetworkChannel b(ChannelConfig::wifi(), 42);
    for (int i = 0; i < 200; ++i) {
        TransmitResult ra = a.transmitFrame(20000, 10.0);
        TransmitResult rb = b.transmitFrame(20000, 10.0);
        EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
        EXPECT_EQ(ra.dropped, rb.dropped);
    }
}

TEST(ChannelTest, LargerFramesTakeLonger)
{
    NetworkChannel small_ch(ChannelConfig::wifi(), 1);
    NetworkChannel large_ch(ChannelConfig::wifi(), 1);
    SampleStats small_stats, large_stats;
    for (int i = 0; i < 300; ++i) {
        TransmitResult s = small_ch.transmitFrame(5000, 5.0);
        TransmitResult l = large_ch.transmitFrame(50000, 5.0);
        if (!s.dropped)
            small_stats.add(s.latency_ms);
        if (!l.dropped)
            large_stats.add(l.latency_ms);
    }
    EXPECT_GT(large_stats.mean(), small_stats.mean());
}

TEST(ChannelTest, PacketizationCountsMtus)
{
    NetworkChannel ch(ChannelConfig::wifi(), 1);
    EXPECT_EQ(ch.transmitFrame(1400, 1.0).packets, 1);
    EXPECT_EQ(ch.transmitFrame(1401, 1.0).packets, 2);
    EXPECT_EQ(ch.transmitFrame(14000, 1.0).packets, 10);
}

TEST(ChannelTest, A720pStreamRarelyDrops)
{
    // ~50 Mbps (a typical 720p60 stream with our codec) on WiFi.
    NetworkChannel ch(ChannelConfig::wifi(), 3);
    for (int i = 0; i < 500; ++i)
        ch.transmitFrame(104000, 50.0);
    EXPECT_LT(ch.dropRate(), 0.08);
}

TEST(ChannelTest, A2kStreamDropsHeavilyOnWifi)
{
    // A 2K stream (~3x the bytes, ~215 Mbps) on WiFi: the paper's
    // motivation reports ~90 % drops in this regime.
    NetworkChannel ch(ChannelConfig::wifi(), 4);
    for (int i = 0; i < 500; ++i)
        ch.transmitFrame(447000, 215.0);
    EXPECT_GT(ch.dropRate(), 0.7);
}

TEST(ChannelTest, EmbbToleratesMoreLoadThanWifi)
{
    // The same 2K stream on 5G mmWave drops substantially (~44 % in
    // the paper) but far less than WiFi.
    NetworkChannel wifi(ChannelConfig::wifi(), 5);
    NetworkChannel embb(ChannelConfig::fiveGEmbb(), 5);
    for (int i = 0; i < 500; ++i) {
        wifi.transmitFrame(447000, 215.0);
        embb.transmitFrame(447000, 215.0);
    }
    EXPECT_GT(wifi.dropRate(), embb.dropRate() + 0.2);
    EXPECT_GT(embb.dropRate(), 0.2);
    EXPECT_LT(embb.dropRate(), 0.7);
}

TEST(ChannelTest, LatencyStatsOnlyCountDelivered)
{
    NetworkChannel ch(ChannelConfig::wifi(), 6);
    for (int i = 0; i < 100; ++i)
        ch.transmitFrame(20000, 8.0);
    EXPECT_EQ(ch.framesTotal(), 100);
    EXPECT_GT(ch.latencyStats().count(), 0);
    EXPECT_LE(ch.latencyStats().count(), 100);
    EXPECT_GT(ch.latencyStats().mean(), 0.0);
}

TEST(ChannelTest, StreamBitrateHelper)
{
    // 20833 bytes/frame at 60 FPS = ~10 Mbps.
    EXPECT_NEAR(streamBitrateMbps(20833.0, 60.0), 10.0, 0.01);
}

} // namespace
} // namespace gssr
