/**
 * @file
 * Unit tests for src/net: channel presets, transmission latency
 * behaviour, loss/congestion drop model, the Gilbert–Elliott burst
 * model, scripted fault scenarios, and determinism.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "net/channel.hh"
#include "net/fault.hh"

namespace gssr
{
namespace
{

/** Pinned replay fingerprint of FrameModeReplayIsUnchanged below. */
constexpr u64 kFrameModeReplayFingerprint = 13254976587859027809ull;

TEST(ChannelConfigTest, PresetsEncodeTheBandwidthLatencyTradeoff)
{
    ChannelConfig embb = ChannelConfig::fiveGEmbb();
    ChannelConfig urllc = ChannelConfig::fiveGUrllc();
    // Sec. II-A: eMBB is high-bandwidth/high-latency, URLLC the
    // opposite.
    EXPECT_GT(embb.bandwidth_mbps, urllc.bandwidth_mbps * 5);
    EXPECT_GT(embb.rtt_ms, urllc.rtt_ms * 3);
}

TEST(ChannelTest, DeterministicForSameSeed)
{
    NetworkChannel a(ChannelConfig::wifi(), 42);
    NetworkChannel b(ChannelConfig::wifi(), 42);
    for (int i = 0; i < 200; ++i) {
        TransmitResult ra = a.transmitFrame(20000, 10.0);
        TransmitResult rb = b.transmitFrame(20000, 10.0);
        EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
        EXPECT_EQ(ra.dropped, rb.dropped);
    }
}

TEST(ChannelTest, LargerFramesTakeLonger)
{
    NetworkChannel small_ch(ChannelConfig::wifi(), 1);
    NetworkChannel large_ch(ChannelConfig::wifi(), 1);
    SampleStats small_stats, large_stats;
    for (int i = 0; i < 300; ++i) {
        TransmitResult s = small_ch.transmitFrame(5000, 5.0);
        TransmitResult l = large_ch.transmitFrame(50000, 5.0);
        if (!s.dropped)
            small_stats.add(s.latency_ms);
        if (!l.dropped)
            large_stats.add(l.latency_ms);
    }
    EXPECT_GT(large_stats.mean(), small_stats.mean());
}

TEST(ChannelTest, PacketizationCountsMtus)
{
    // Header-aware: each 1400-byte MTU carries 1400 - 21 payload
    // bytes (net/packetizer.hh).
    NetworkChannel ch(ChannelConfig::wifi(), 1);
    EXPECT_EQ(ch.transmitFrame(1379, 1.0).packets, 1);
    EXPECT_EQ(ch.transmitFrame(1380, 1.0).packets, 2);
    EXPECT_EQ(ch.transmitFrame(13790, 1.0).packets, 10);
}

TEST(ChannelTest, MtuMustExceedWireHeader)
{
    ChannelConfig config = ChannelConfig::wifi();
    config.mtu_bytes = 21;
    EXPECT_THROW(NetworkChannel(config, 1), PanicError);
}

TEST(ChannelTest, TransmitPacketsIsDeterministicAndCounted)
{
    ChannelConfig config = ChannelConfig::wifiBursty();
    config.granularity = LossGranularity::Packet;
    NetworkChannel a(config, 17);
    NetworkChannel b(config, 17);
    i64 lost = 0;
    for (int i = 0; i < 300; ++i) {
        PacketTransmitResult ra = a.transmitPackets(60000, 43, 20.0);
        PacketTransmitResult rb = b.transmitPackets(60000, 43, 20.0);
        ASSERT_EQ(ra.delivered, rb.delivered);
        EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
        EXPECT_EQ(ra.packets, 43);
        EXPECT_EQ(int(ra.delivered.size()), 43);
        i64 bitmap_lost = 0;
        for (bool d : ra.delivered)
            bitmap_lost += d ? 0 : 1;
        EXPECT_EQ(bitmap_lost, ra.packets_lost);
        lost += ra.packets_lost;
    }
    EXPECT_EQ(a.packetsTotal(), 300 * 43);
    EXPECT_EQ(a.packetsLost(), lost);
    // Bursty WiFi at packet granularity loses *some* packets over
    // 12900 draws, and bursts clip packet spans, not whole frames.
    EXPECT_GT(lost, 0);
    EXPECT_LT(a.packetLossRate(), 0.5);
}

TEST(ChannelTest, PacketBurstsRaiseTheCongestionSignal)
{
    ChannelConfig config = ChannelConfig::wifiBursty();
    config.granularity = LossGranularity::Packet;
    NetworkChannel ch(config, 23);
    bool saw_burst_signal = false;
    for (int i = 0; i < 500; ++i) {
        PacketTransmitResult r = ch.transmitPackets(60000, 43, 20.0);
        if (r.lost_by_cause[size_t(DropCause::Burst)] > 0) {
            EXPECT_TRUE(r.congestionSignal());
            saw_burst_signal = true;
        }
    }
    EXPECT_TRUE(saw_burst_signal);
}

TEST(ChannelTest, FrameModeReplayIsUnchangedByPacketMachinery)
{
    // Golden guard: the frame-granularity drop/latency sequence for a
    // fixed seed must stay bit-identical as the packet-mode machinery
    // evolves (the checked-in golden traces were recorded under it).
    // The fingerprint hashes the first 200 outcomes of wifi()/seed 42
    // at a constant load.
    NetworkChannel ch(ChannelConfig::wifi(), 42);
    u64 h = 1469598103934665603ull; // FNV-1a offset basis
    auto mix = [&h](u64 v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (int i = 0; i < 200; ++i) {
        TransmitResult tx = ch.transmitFrame(20000, 10.0);
        u64 bits;
        static_assert(sizeof(bits) == sizeof(tx.latency_ms));
        std::memcpy(&bits, &tx.latency_ms, sizeof(bits));
        mix(bits);
        mix(tx.dropped ? 1 : 0);
        mix(u64(tx.cause));
    }
    EXPECT_EQ(h, kFrameModeReplayFingerprint);
}

TEST(ChannelTest, A720pStreamRarelyDrops)
{
    // ~50 Mbps (a typical 720p60 stream with our codec) on WiFi.
    NetworkChannel ch(ChannelConfig::wifi(), 3);
    for (int i = 0; i < 500; ++i)
        ch.transmitFrame(104000, 50.0);
    EXPECT_LT(ch.dropRate(), 0.08);
}

TEST(ChannelTest, A2kStreamDropsHeavilyOnWifi)
{
    // A 2K stream (~3x the bytes, ~215 Mbps) on WiFi: the paper's
    // motivation reports ~90 % drops in this regime.
    NetworkChannel ch(ChannelConfig::wifi(), 4);
    for (int i = 0; i < 500; ++i)
        ch.transmitFrame(447000, 215.0);
    EXPECT_GT(ch.dropRate(), 0.7);
}

TEST(ChannelTest, EmbbToleratesMoreLoadThanWifi)
{
    // The same 2K stream on 5G mmWave drops substantially (~44 % in
    // the paper) but far less than WiFi.
    NetworkChannel wifi(ChannelConfig::wifi(), 5);
    NetworkChannel embb(ChannelConfig::fiveGEmbb(), 5);
    for (int i = 0; i < 500; ++i) {
        wifi.transmitFrame(447000, 215.0);
        embb.transmitFrame(447000, 215.0);
    }
    EXPECT_GT(wifi.dropRate(), embb.dropRate() + 0.2);
    EXPECT_GT(embb.dropRate(), 0.2);
    EXPECT_LT(embb.dropRate(), 0.7);
}

TEST(ChannelTest, LatencyStatsOnlyCountDelivered)
{
    NetworkChannel ch(ChannelConfig::wifi(), 6);
    for (int i = 0; i < 100; ++i)
        ch.transmitFrame(20000, 8.0);
    EXPECT_EQ(ch.framesTotal(), 100);
    EXPECT_GT(ch.latencyStats().count(), 0);
    EXPECT_LE(ch.latencyStats().count(), 100);
    EXPECT_GT(ch.latencyStats().mean(), 0.0);
}

TEST(ChannelTest, StreamBitrateHelper)
{
    // 20833 bytes/frame at 60 FPS = ~10 Mbps.
    EXPECT_NEAR(streamBitrateMbps(20833.0, 60.0), 10.0, 0.01);
}

TEST(ChannelConfigTest, ConstructorValidatesProbabilities)
{
    ChannelConfig bad = ChannelConfig::wifi();
    bad.packet_loss = 1.5;
    EXPECT_THROW(NetworkChannel(bad, 1), PanicError);

    bad = ChannelConfig::wifi();
    bad.bandwidth_jitter = -0.1;
    EXPECT_THROW(NetworkChannel(bad, 1), PanicError);

    bad = ChannelConfig::wifi();
    bad.congestion_knee = 0.0;
    EXPECT_THROW(NetworkChannel(bad, 1), PanicError);

    bad = ChannelConfig::wifi();
    bad.congestion_knee = 1.2;
    EXPECT_THROW(NetworkChannel(bad, 1), PanicError);

    bad = ChannelConfig::wifi();
    bad.jitter_ms = -1.0;
    EXPECT_THROW(NetworkChannel(bad, 1), PanicError);

    bad = ChannelConfig::wifi();
    bad.ge_p_enter_burst = 2.0;
    EXPECT_THROW(NetworkChannel(bad, 1), PanicError);

    EXPECT_NO_THROW(NetworkChannel(ChannelConfig::wifiBursty(), 1));
}

TEST(ChannelTest, ResetReplaysTheExactSameSequence)
{
    NetworkChannel ch(ChannelConfig::wifiBursty(), 17,
                      FaultScenario::lossBurst(20, 5));
    std::vector<f64> latency;
    std::vector<bool> dropped;
    for (int i = 0; i < 100; ++i) {
        TransmitResult tx = ch.transmitFrame(30000, 15.0);
        latency.push_back(tx.latency_ms);
        dropped.push_back(tx.dropped);
    }
    EXPECT_EQ(ch.framesTotal(), 100);

    ch.reset();
    EXPECT_EQ(ch.framesTotal(), 0);
    EXPECT_EQ(ch.framesDropped(), 0);
    EXPECT_EQ(ch.latencyStats().count(), 0);
    for (int i = 0; i < 100; ++i) {
        TransmitResult tx = ch.transmitFrame(30000, 15.0);
        EXPECT_DOUBLE_EQ(tx.latency_ms, latency[size_t(i)]);
        EXPECT_EQ(tx.dropped, dropped[size_t(i)]);
    }
}

TEST(ChannelTest, ResetRestoresBurstStateAndDropCounters)
{
    // reset() must restore the *whole* channel state, not just the
    // RNG: the Gilbert–Elliott burst flag and the per-cause drop
    // counters have to go back to their initial values too, or a
    // reused channel replays a different loss pattern. A bursty
    // config with a mid-run scenario makes a stale ge_bad_ or
    // counter state visible immediately.
    NetworkChannel ch(ChannelConfig::wifiBursty(), 17,
                      FaultScenario::lossBurst(20, 5));
    std::vector<DropCause> causes;
    for (int i = 0; i < 200; ++i)
        causes.push_back(ch.transmitFrame(30000, 15.0).cause);

    // Capture per-cause totals of the first pass, then reset.
    const DropCause kCauses[] = {
        DropCause::Congestion, DropCause::Burst, DropCause::Random,
        DropCause::Scenario};
    std::vector<i64> totals;
    for (DropCause c : kCauses)
        totals.push_back(ch.dropCount(c));

    ch.reset();
    EXPECT_FALSE(ch.inBurst()) << "GE chain must restart in Good";
    for (DropCause c : kCauses)
        EXPECT_EQ(ch.dropCount(c), 0)
            << "per-cause counter " << dropCauseName(c)
            << " not cleared";

    // The replay must agree drop-by-drop *including the cause*.
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(ch.transmitFrame(30000, 15.0).cause,
                  causes[size_t(i)])
            << "cause diverged at frame " << i;
    }
    for (size_t c = 0; c < std::size(kCauses); ++c)
        EXPECT_EQ(ch.dropCount(kCauses[c]), totals[c]);
}

TEST(ChannelTest, ResetReplaysPacketModeBitmapsBitIdentically)
{
    // Packet-mode regression pin for reset(): the per-packet
    // delivery bitmaps, per-cause loss ledger and GE chain state
    // must all restart, or a reused packet-granularity channel
    // (cluster failover replays migrate sessions onto fresh
    // channels) diverges from its first run. Stop the first pass
    // mid-burst so a stale ge_bad_ would flip the replayed bitmaps
    // immediately.
    ChannelConfig config = ChannelConfig::wifiBursty();
    config.granularity = LossGranularity::Packet;
    NetworkChannel ch(config, 29, FaultScenario::lossBurst(40, 8));

    std::vector<std::vector<bool>> bitmaps;
    std::vector<f64> latency;
    std::array<i64, 5> lost_by_cause{};
    int transmitted = 0;
    bool stopped_in_burst = false;
    for (int i = 0; i < 400; ++i) {
        PacketTransmitResult tx = ch.transmitPackets(48000, 35, 18.0);
        bitmaps.push_back(tx.delivered);
        latency.push_back(tx.latency_ms);
        for (size_t c = 0; c < lost_by_cause.size(); ++c)
            lost_by_cause[c] += tx.lost_by_cause[c];
        transmitted += 1;
        // Quit the moment the GE chain is mid-burst: the strongest
        // stale-state probe for the reset below.
        if (i >= 100 && ch.inBurst()) {
            stopped_in_burst = true;
            break;
        }
    }
    ASSERT_TRUE(stopped_in_burst)
        << "bursty config never entered a burst; weak test";
    const i64 packets_total = ch.packetsTotal();
    const i64 packets_lost = ch.packetsLost();
    EXPECT_EQ(packets_total, i64(transmitted) * 35);

    ch.reset();
    EXPECT_EQ(ch.packetsTotal(), 0);
    EXPECT_EQ(ch.packetsLost(), 0);
    EXPECT_FALSE(ch.inBurst());
    for (size_t c = 1; c < lost_by_cause.size(); ++c)
        EXPECT_EQ(ch.dropCount(DropCause(c)), 0);

    std::array<i64, 5> replay_by_cause{};
    for (int i = 0; i < transmitted; ++i) {
        PacketTransmitResult tx = ch.transmitPackets(48000, 35, 18.0);
        ASSERT_EQ(tx.delivered, bitmaps[size_t(i)])
            << "delivery bitmap diverged at frame " << i;
        EXPECT_DOUBLE_EQ(tx.latency_ms, latency[size_t(i)]);
        for (size_t c = 0; c < replay_by_cause.size(); ++c)
            replay_by_cause[c] += tx.lost_by_cause[c];
    }
    EXPECT_EQ(replay_by_cause, lost_by_cause);
    EXPECT_EQ(ch.packetsTotal(), packets_total);
    EXPECT_EQ(ch.packetsLost(), packets_lost);
}

TEST(GilbertElliottTest, LongRunLossRateMatchesStationaryChain)
{
    // pi_bad = p_enter / (p_enter + p_exit) = 0.05 / 0.55 ~ 9.1 %;
    // with ge_loss_bad = 1 the long-run drop rate equals pi_bad.
    ChannelConfig config = ChannelConfig::wifi();
    config.packet_loss = 0.0;
    config.ge_p_enter_burst = 0.05;
    config.ge_p_exit_burst = 0.5;
    config.ge_loss_good = 0.0;
    config.ge_loss_bad = 1.0;
    NetworkChannel ch(config, 7);
    const int frames = 20000;
    for (int i = 0; i < frames; ++i)
        ch.transmitFrame(2000, 1.0); // far from congestion
    EXPECT_NEAR(ch.dropRate(), 0.05 / 0.55, 0.02);
    EXPECT_EQ(ch.dropCount(DropCause::Burst), ch.framesDropped());
}

TEST(GilbertElliottTest, MeanBurstLengthMatchesExitProbability)
{
    // Mean Bad-state sojourn is 1 / p_exit = 2 frames; with
    // ge_loss_bad = 1 the drop runs have the same mean length.
    ChannelConfig config = ChannelConfig::wifi();
    config.packet_loss = 0.0;
    config.ge_p_enter_burst = 0.02;
    config.ge_p_exit_burst = 0.5;
    config.ge_loss_bad = 1.0;
    NetworkChannel ch(config, 11);
    i64 runs = 0, dropped = 0;
    bool in_run = false;
    for (int i = 0; i < 30000; ++i) {
        bool drop = ch.transmitFrame(2000, 1.0).dropped;
        dropped += drop;
        runs += drop && !in_run;
        in_run = drop;
    }
    ASSERT_GT(runs, 100);
    f64 mean_run = f64(dropped) / f64(runs);
    EXPECT_NEAR(mean_run, 2.0, 0.5);
}

TEST(FaultScenarioTest, EffectComposesOverlappingWindows)
{
    FaultScenario s;
    FaultEvent a;
    a.start_frame = 0;
    a.end_frame = 10;
    a.bandwidth_scale = 0.5;
    a.extra_loss = 0.5;
    FaultEvent b;
    b.start_frame = 5;
    b.end_frame = 15;
    b.bandwidth_scale = 0.5;
    b.extra_rtt_ms = 40.0;
    b.extra_loss = 0.5;
    s.events = {a, b};

    FaultEvent at0 = s.effectAt(0);
    EXPECT_DOUBLE_EQ(at0.bandwidth_scale, 0.5);
    EXPECT_DOUBLE_EQ(at0.extra_rtt_ms, 0.0);
    FaultEvent at7 = s.effectAt(7);
    EXPECT_DOUBLE_EQ(at7.bandwidth_scale, 0.25);
    EXPECT_DOUBLE_EQ(at7.extra_rtt_ms, 40.0);
    EXPECT_DOUBLE_EQ(at7.extra_loss, 0.75); // 1 - 0.5 * 0.5
    FaultEvent at20 = s.effectAt(20);
    EXPECT_DOUBLE_EQ(at20.bandwidth_scale, 1.0);
}

TEST(FaultScenarioTest, LossBurstDropsEveryFrameInWindow)
{
    NetworkChannel ch(ChannelConfig::wifi(), 3,
                      FaultScenario::lossBurst(10, 5));
    for (int i = 0; i < 30; ++i) {
        TransmitResult tx = ch.transmitFrame(2000, 1.0);
        if (i >= 10 && i < 15) {
            EXPECT_TRUE(tx.dropped) << "frame " << i;
            EXPECT_EQ(tx.cause, DropCause::Burst);
        }
    }
    EXPECT_GE(ch.dropCount(DropCause::Burst), 5);
}

TEST(FaultScenarioTest, RttSpikeRaisesLatencyOnlyInWindow)
{
    ChannelConfig config = ChannelConfig::wifi();
    config.packet_loss = 0.0;
    config.jitter_ms = 0.0;
    NetworkChannel clean(config, 5);
    NetworkChannel spiked(config, 5, FaultScenario::rttSpike(5, 5, 80.0));
    for (int i = 0; i < 15; ++i) {
        TransmitResult a = clean.transmitFrame(2000, 1.0);
        TransmitResult b = spiked.transmitFrame(2000, 1.0);
        if (i >= 5 && i < 10)
            EXPECT_NEAR(b.latency_ms - a.latency_ms, 80.0, 1e-9);
        else
            EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
    }
}

TEST(FaultScenarioTest, BandwidthCollapseCongestsTheStream)
{
    // A stream that fits comfortably in the clean channel drops
    // heavily once capacity collapses to a quarter.
    NetworkChannel ch(ChannelConfig::wifi(), 9,
                      FaultScenario::bandwidthCollapse(100, 200, 0.25));
    i64 early_drops = 0, window_drops = 0;
    for (int i = 0; i < 300; ++i) {
        bool drop = ch.transmitFrame(104000, 50.0).dropped;
        if (i < 100)
            early_drops += drop;
        else
            window_drops += drop;
    }
    EXPECT_LT(early_drops, 10);
    EXPECT_GT(window_drops, 60);
    EXPECT_GT(ch.dropCount(DropCause::Congestion), 0);
}

TEST(FaultScenarioTest, ScenarioReplayIsByteIdentical)
{
    // Same (seed, scenario) pair => identical drop/latency sequence,
    // the property the resilience benches rely on.
    FaultScenario scenario = FaultScenario::mixed(10, 20);
    NetworkChannel a(ChannelConfig::wifiBursty(), 21, scenario);
    NetworkChannel b(ChannelConfig::wifiBursty(), 21, scenario);
    for (int i = 0; i < 200; ++i) {
        TransmitResult ra = a.transmitFrame(30000, 15.0);
        TransmitResult rb = b.transmitFrame(30000, 15.0);
        EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
        EXPECT_EQ(ra.dropped, rb.dropped);
        EXPECT_EQ(ra.cause, rb.cause);
    }
}

TEST(ChannelTest, FeedbackPathDoesNotPerturbDataPath)
{
    // Sampling feedback delays must not change the data-path replay
    // (NACK-on vs NACK-off sessions see the same channel).
    NetworkChannel with(ChannelConfig::wifiBursty(), 31);
    NetworkChannel without(ChannelConfig::wifiBursty(), 31);
    for (int i = 0; i < 100; ++i) {
        f64 delay = with.feedbackDelayMs();
        EXPECT_GE(delay, with.config().rtt_ms * 0.5);
        TransmitResult ra = with.transmitFrame(30000, 15.0);
        TransmitResult rb = without.transmitFrame(30000, 15.0);
        EXPECT_DOUBLE_EQ(ra.latency_ms, rb.latency_ms);
        EXPECT_EQ(ra.dropped, rb.dropped);
    }
}

} // namespace
} // namespace gssr
