/**
 * @file
 * Unit tests for src/pipeline: the stage-trace accounting, the
 * streaming server, the three client designs (GameStreamSR, NEMO,
 * SR-integrated decoder) and the session driver. Latency-ratio tests
 * run in accounting-only mode at the paper's real resolutions; pixel
 * tests run at reduced resolutions.
 */

#include <gtest/gtest.h>

#include "metrics/psnr.hh"
#include "pipeline/client.hh"
#include "pipeline/server.hh"
#include "pipeline/session.hh"
#include "sr/trainer.hh"

namespace gssr
{
namespace
{

TEST(TraceTest, StageAndResourceNames)
{
    EXPECT_STREQ(stageName(Stage::Upscale), "upscale");
    EXPECT_STREQ(stageName(Stage::RoiDetect), "roi-detect");
    EXPECT_STREQ(resourceName(Resource::ClientNpu), "client-npu");
}

TEST(TraceTest, MtpIsSumOfStageLatencies)
{
    FrameTrace t;
    StageScope(t, Stage::Render, Resource::ServerGpu).latencyMs(6.0);
    StageScope(t, Stage::Network, Resource::NetworkLink)
        .latencyMs(10.0)
        .energyMj(1.0);
    StageScope(t, Stage::Upscale, Resource::ClientNpu)
        .latencyMs(16.0)
        .energyMj(30.0);
    EXPECT_DOUBLE_EQ(t.mtpLatencyMs(), 32.0);
    EXPECT_DOUBLE_EQ(t.stageLatencyMs(Stage::Upscale), 16.0);
    EXPECT_DOUBLE_EQ(t.stageEnergyMj(Stage::Upscale), 30.0);
}

TEST(TraceTest, BottleneckGroupsByResource)
{
    // NEMO-style: decode and upscale share the CPU -> they add up.
    FrameTrace nemo;
    StageScope(nemo, Stage::Decode, Resource::ClientCpu)
        .latencyMs(12.0);
    StageScope(nemo, Stage::Upscale, Resource::ClientCpu)
        .latencyMs(14.0);
    EXPECT_DOUBLE_EQ(nemo.clientBottleneckMs(), 26.0);

    // GameStreamSR: decode (HW), upscale (NPU), merge (GPU) overlap.
    FrameTrace ours;
    StageScope(ours, Stage::Decode, Resource::ClientHwDecoder)
        .latencyMs(2.0);
    StageScope(ours, Stage::Upscale, Resource::ClientNpu)
        .latencyMs(16.2);
    StageScope(ours, Stage::Merge, Resource::ClientGpu).latencyMs(0.5);
    EXPECT_DOUBLE_EQ(ours.clientBottleneckMs(), 16.2);
}

TEST(TraceTest, ClientEnergyExcludesServerStages)
{
    FrameTrace t;
    StageScope(t, Stage::Render, Resource::ServerGpu)
        .latencyMs(6.0)
        .energyMj(100.0);
    StageScope(t, Stage::Upscale, Resource::ClientNpu)
        .latencyMs(16.0)
        .energyMj(30.0);
    StageScope(t, Stage::Display, Resource::ClientDisplay)
        .latencyMs(16.0)
        .energyMj(2.5);
    EXPECT_DOUBLE_EQ(t.clientEnergyMj(), 32.5);
}

/** Small, fast server configuration for structural tests. */
ServerConfig
smallServerConfig()
{
    ServerConfig config;
    config.lr_size = {192, 96};
    config.codec.gop_size = 4;
    return config;
}

TEST(ServerTest, ProducesGopStructureWithRoi)
{
    GameWorld world(GameId::G1_MetroExodus, 7);
    GameStreamServer server(world, smallServerConfig(),
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    for (int i = 0; i < 6; ++i) {
        ServerFrameOutput out = server.nextFrame();
        EXPECT_EQ(out.encoded.index, i);
        EXPECT_EQ(out.encoded.type, i % 4 == 0
                                        ? FrameType::Reference
                                        : FrameType::NonReference);
        ASSERT_TRUE(out.roi.has_value());
        EXPECT_TRUE((Rect{0, 0, 192, 96}.contains(*out.roi)));
        EXPECT_GT(out.trace.stageLatencyMs(Stage::Render), 0.0);
        EXPECT_GT(out.trace.stageLatencyMs(Stage::RoiDetect), 0.0);
        EXPECT_GT(out.encoded.sizeBytes(), 0u);
        EXPECT_FALSE(out.rendered.depth.empty());
    }
}

TEST(ServerTest, NemoModeServerSkipsRoi)
{
    GameWorld world(GameId::G1_MetroExodus, 7);
    ServerConfig config = smallServerConfig();
    config.enable_roi = false;
    GameStreamServer server(world, config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    ServerFrameOutput out = server.nextFrame();
    EXPECT_FALSE(out.roi.has_value());
    EXPECT_DOUBLE_EQ(out.trace.stageLatencyMs(Stage::RoiDetect), 0.0);
}

/**
 * Accounting-only clients at the paper's real resolution: these
 * tests pin the headline speedups of Fig. 10a.
 */
class AccountingTest : public ::testing::Test
{
  protected:
    ClientConfig
    makeConfig(const DeviceProfile &device)
    {
        ClientConfig config;
        config.device = device;
        config.lr_size = {1280, 720};
        config.scale_factor = 2;
        config.compute_pixels = false;
        return config;
    }

    EncodedFrame
    fakeFrame(FrameType type, i64 index)
    {
        EncodedFrame f;
        f.type = type;
        f.size = {1280, 720};
        f.index = index;
        f.payload.resize(20000);
        return f;
    }

    Rect roi_{490, 210, 300, 300};
};

TEST_F(AccountingTest, GssrReferenceFrameHitsSixtyFps)
{
    GssrClient client(makeConfig(DeviceProfile::galaxyTabS8()));
    auto r = client.processFrame(fakeFrame(FrameType::Reference, 0),
                                 roi_);
    f64 bottleneck = r.trace.clientBottleneckMs();
    EXPECT_LT(bottleneck, 1000.0 / 60.0);
    EXPECT_NEAR(1000.0 / bottleneck, 61.7, 2.0); // paper: 61.7 FPS
}

TEST_F(AccountingTest, ReferenceFrameSpeedupIsAboutThirteenX)
{
    // Fig. 10a: 13x on the S8 Tab, 14x on the Pixel 7 Pro.
    for (auto [device, expected] :
         {std::pair{DeviceProfile::galaxyTabS8(), 13.4},
          std::pair{DeviceProfile::pixel7Pro(), 14.2}}) {
        GssrClient ours(makeConfig(device));
        NemoClient nemo(makeConfig(device));
        f64 ours_ms =
            ours.processFrame(fakeFrame(FrameType::Reference, 0),
                              roi_)
                .trace.clientBottleneckMs();
        f64 nemo_ms =
            nemo.processFrame(fakeFrame(FrameType::Reference, 0),
                              std::nullopt)
                .trace.clientBottleneckMs();
        EXPECT_NEAR(nemo_ms / ours_ms, expected, 1.5)
            << device.name;
    }
}

TEST_F(AccountingTest, NonReferenceSpeedupIsAboutOnePointSixX)
{
    for (auto device : {DeviceProfile::galaxyTabS8(),
                        DeviceProfile::pixel7Pro()}) {
        GssrClient ours(makeConfig(device));
        NemoClient nemo(makeConfig(device));
        // Prime NEMO with a reference frame.
        nemo.processFrame(fakeFrame(FrameType::Reference, 0),
                          std::nullopt);
        f64 ours_ms =
            ours.processFrame(fakeFrame(FrameType::NonReference, 1),
                              roi_)
                .trace.clientBottleneckMs();
        f64 nemo_ms =
            nemo.processFrame(fakeFrame(FrameType::NonReference, 1),
                              std::nullopt)
                .trace.clientBottleneckMs();
        EXPECT_GT(nemo_ms / ours_ms, 1.4) << device.name;
        EXPECT_LT(nemo_ms / ours_ms, 1.9) << device.name;
    }
}

TEST_F(AccountingTest, NemoNonReferenceMissesTheDeadline)
{
    // The Fig. 2 observation that motivates the whole design.
    NemoClient nemo(makeConfig(DeviceProfile::galaxyTabS8()));
    nemo.processFrame(fakeFrame(FrameType::Reference, 0),
                      std::nullopt);
    f64 ms = nemo.processFrame(fakeFrame(FrameType::NonReference, 1),
                               std::nullopt)
                 .trace.clientBottleneckMs();
    EXPECT_GT(ms, 1000.0 / 60.0);
}

TEST_F(AccountingTest, GssrUsesHardwareDecoderNemoUsesCpu)
{
    GssrClient ours(makeConfig(DeviceProfile::pixel7Pro()));
    NemoClient nemo(makeConfig(DeviceProfile::pixel7Pro()));
    auto ours_trace =
        ours.processFrame(fakeFrame(FrameType::Reference, 0), roi_)
            .trace;
    auto nemo_trace =
        nemo.processFrame(fakeFrame(FrameType::Reference, 0),
                          std::nullopt)
            .trace;
    auto decode_resource = [](const FrameTrace &t) {
        for (const auto &r : t.records)
            if (r.stage == Stage::Decode)
                return r.resource;
        return Resource::NetworkLink;
    };
    EXPECT_EQ(decode_resource(ours_trace),
              Resource::ClientHwDecoder);
    EXPECT_EQ(decode_resource(nemo_trace), Resource::ClientCpu);
    // Fig. 12: the decode stage is where our energy savings come
    // from.
    EXPECT_LT(ours_trace.stageEnergyMj(Stage::Decode),
              nemo_trace.stageEnergyMj(Stage::Decode) / 5.0);
}

TEST_F(AccountingTest, UpscaleDominatesGssrClientEnergy)
{
    // Fig. 12: upscaling is ~85 % of our client processing energy.
    GssrClient ours(makeConfig(DeviceProfile::pixel7Pro()));
    auto trace =
        ours.processFrame(fakeFrame(FrameType::NonReference, 1), roi_)
            .trace;
    f64 upscale = trace.stageEnergyMj(Stage::Upscale);
    f64 total = trace.clientEnergyMj();
    EXPECT_GT(upscale / total, 0.75);
    EXPECT_LT(upscale / total, 0.95);
}

TEST_F(AccountingTest, SrDecoderBypassesNpuOnNonReferenceFrames)
{
    SrDecoderClient client(makeConfig(DeviceProfile::pixel7Pro()));
    auto ref =
        client.processFrame(fakeFrame(FrameType::Reference, 0), roi_);
    auto nonref = client.processFrame(
        fakeFrame(FrameType::NonReference, 1), roi_);
    EXPECT_GT(ref.trace.stageLatencyMs(Stage::Upscale), 0.0);
    EXPECT_DOUBLE_EQ(nonref.trace.stageLatencyMs(Stage::Upscale),
                     0.0);
    // Sec. VI: bypassing the upscale engine saves most of the
    // per-frame energy.
    EXPECT_LT(nonref.trace.clientEnergyMj(),
              ref.trace.clientEnergyMj() * 0.5);
    // And it still meets the real-time deadline.
    EXPECT_LT(nonref.trace.clientBottleneckMs(), 1000.0 / 60.0);
}

/** Shared trained net for pixel tests (small, fast). */
std::shared_ptr<const CompactSrNet>
testNet()
{
    static std::shared_ptr<const CompactSrNet> net = [] {
        TrainerConfig config;
        config.iterations = 150;
        return std::make_shared<const CompactSrNet>(
            trainedSrNet("", config));
    }();
    return net;
}

/** Pixel-mode client config at reduced resolution. */
ClientConfig
pixelConfig()
{
    ClientConfig config;
    config.device = DeviceProfile::galaxyTabS8();
    config.lr_size = {192, 96};
    config.scale_factor = 2;
    config.codec.gop_size = 4;
    config.compute_pixels = true;
    config.sr_net = testNet();
    return config;
}

TEST(PixelPipelineTest, GssrClientProducesMergedHrFrame)
{
    GameWorld world(GameId::G3_Witcher3, 5);
    ServerConfig server_config = smallServerConfig();
    GameStreamServer server(world, server_config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    GssrClient client(pixelConfig());

    ServerFrameOutput produced = server.nextFrame();
    ClientFrameResult r =
        client.processFrame(produced.encoded, produced.roi);
    EXPECT_EQ(r.upscaled.size(), (Size{384, 192}));

    // The merged output must differ from plain bilinear inside the
    // RoI (the DNN path actually ran there).
    ColorImage hr_render =
        renderScene(world.sceneAt(produced.time_s), {384, 192}).color;
    EXPECT_GT(psnr(r.upscaled, hr_render), 24.0);
}

TEST(PixelPipelineTest, NemoQualityDriftsAcrossNonReferenceFrames)
{
    // Fig. 13: NEMO's PSNR decays within a GOP because interpolated
    // reconstructions accumulate error; GameStreamSR stays stable.
    GameWorld world(GameId::G3_Witcher3, 5);
    ServerConfig server_config = smallServerConfig();
    server_config.codec.gop_size = 8;
    GameStreamServer server(world, server_config,
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    ClientConfig client_config = pixelConfig();
    client_config.codec.gop_size = 8;
    NemoClient nemo(client_config);
    GssrClient ours(client_config);

    std::vector<f64> nemo_psnr;
    std::vector<f64> ours_psnr;
    for (int i = 0; i < 8; ++i) {
        ServerFrameOutput produced = server.nextFrame();
        ColorImage truth =
            renderScene(world.sceneAt(produced.time_s), {384, 192})
                .color;
        nemo_psnr.push_back(psnr(
            nemo.processFrame(produced.encoded, std::nullopt)
                .upscaled,
            truth));
        ours_psnr.push_back(psnr(
            ours.processFrame(produced.encoded, produced.roi)
                .upscaled,
            truth));
    }
    // NEMO: the GOP tail is worse than its start.
    EXPECT_LT(nemo_psnr.back(), nemo_psnr.front() - 0.4);
    // Ours: stable across the GOP (no accumulation path).
    EXPECT_NEAR(ours_psnr.back(), ours_psnr.front(), 1.5);
}

TEST(PixelPipelineTest, SrDecoderReconstructionStaysReasonable)
{
    GameWorld world(GameId::G3_Witcher3, 5);
    GameStreamServer server(world, smallServerConfig(),
                            ServerProfile::gamingWorkstation(),
                            {48, 48});
    SrDecoderClient client(pixelConfig());
    f64 last_psnr = 0.0;
    for (int i = 0; i < 4; ++i) {
        ServerFrameOutput produced = server.nextFrame();
        ClientFrameResult r =
            client.processFrame(produced.encoded, produced.roi);
        ColorImage truth =
            renderScene(world.sceneAt(produced.time_s), {384, 192})
                .color;
        last_psnr = psnr(r.upscaled, truth);
    }
    EXPECT_GT(last_psnr, 22.0);
}

TEST(SessionTest, SmokeRunCollectsTracesAndQuality)
{
    SessionConfig config;
    config.game = GameId::G1_MetroExodus;
    config.frames = 6;
    config.lr_size = {192, 96};
    config.codec.gop_size = 3;
    config.design = DesignKind::GameStreamSR;
    config.compute_pixels = true;
    config.sr_net = testNet();
    config.measure_quality = true;
    config.quality_stride = 2;

    SessionResult result = runSession(config);
    ASSERT_EQ(result.traces.size(), 6u);
    EXPECT_EQ(result.quality.size(), 3u);
    EXPECT_GT(result.meanPsnrDb(), 20.0);
    EXPECT_GT(result.meanMtpMs(FrameType::Reference), 0.0);
    EXPECT_GT(result.meanClientEnergyMj(), 0.0);
    EXPECT_GT(result.overallClientEnergyMj(2.0),
              result.meanClientEnergyMj() * 6.0);
}

TEST(SessionTest, AccountingModeNeedsNoNet)
{
    SessionConfig config;
    config.game = GameId::G9_FarmingSimulator;
    config.frames = 4;
    config.lr_size = {192, 96};
    config.codec.gop_size = 2;
    config.design = DesignKind::Nemo;
    config.compute_pixels = false;
    SessionResult result = runSession(config);
    EXPECT_EQ(result.traces.size(), 4u);
    EXPECT_TRUE(result.quality.empty());
}

TEST(SessionTest, DeterministicForSameConfig)
{
    SessionConfig config;
    config.game = GameId::G2_FarCry5;
    config.frames = 4;
    config.lr_size = {192, 96};
    config.codec.gop_size = 2;
    config.compute_pixels = false;
    SessionResult a = runSession(config);
    SessionResult b = runSession(config);
    ASSERT_EQ(a.traces.size(), b.traces.size());
    for (size_t i = 0; i < a.traces.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.traces[i].mtpLatencyMs(),
                         b.traces[i].mtpLatencyMs());
        EXPECT_EQ(a.traces[i].encoded_bytes,
                  b.traces[i].encoded_bytes);
    }
}

TEST(SessionTest, NegotiatedRoiWindowIsAbout300ForBothDevices)
{
    Size s8 = negotiatedRoiWindow(DeviceProfile::galaxyTabS8(), 2,
                                  {1280, 720});
    Size pixel = negotiatedRoiWindow(DeviceProfile::pixel7Pro(), 2,
                                     {1280, 720});
    EXPECT_NEAR(s8.width, 300, 12);
    EXPECT_NEAR(pixel.width, 300, 12);
}

TEST(SessionTest, DesignNames)
{
    EXPECT_STREQ(designName(DesignKind::GameStreamSR),
                 "gamestreamsr");
    EXPECT_STREQ(designName(DesignKind::Nemo), "nemo");
    EXPECT_STREQ(designName(DesignKind::SrDecoder), "sr-decoder");
}

} // namespace
} // namespace gssr
