/**
 * @file
 * Cloud VR extension demo (paper Sec. VI): render a game world in
 * stereo, run depth-guided RoI detection per eye, and analyze the
 * two-eye real-time budget — all without any headset eye-tracking
 * sensor (the paper's inclusiveness argument).
 *
 * Usage: ./vr_streaming [G1..G10]
 */

#include <cstdio>
#include <cstring>

#include "frame/image_io.hh"
#include "render/games.hh"
#include "render/stereo.hh"
#include "roi/foveal.hh"
#include "roi/roi_detector.hh"
#include "sr/upscaler.hh"

using namespace gssr;

int
main(int argc, char **argv)
{
    GameId game = GameId::G6_GodOfWar;
    if (argc > 1) {
        for (const auto &info : tableOneGames())
            if (std::strcmp(info.short_name, argv[1]) == 0)
                game = info.id;
    }

    std::printf("Cloud VR extension demo — %s\n",
                gameInfo(game).title);
    std::printf("=====================================\n\n");

    GameWorld world(game, 2);
    Scene scene = world.sceneAt(1.0);
    StereoConfig stereo;
    StereoRenderOutput eyes = renderStereo(scene, {480, 270}, stereo);
    writePpm("vr_left.ppm", eyes.left.color);
    writePpm("vr_right.ppm", eyes.right.color);
    std::printf("wrote vr_left.ppm / vr_right.ppm (IPD %.3f)\n\n",
                stereo.ipd);

    RoiDetector detector(ServerProfile::gamingWorkstation());
    RoiDetection left = detector.detect(eyes.left.depth, {110, 110});
    RoiDetection right =
        detector.detect(eyes.right.depth, {110, 110});
    std::printf("left-eye RoI : x=%d y=%d (depth-guided: %s)\n",
                left.roi.x, left.roi.y,
                left.depth_guided ? "yes" : "no");
    std::printf("right-eye RoI: x=%d y=%d (depth-guided: %s)\n",
                right.roi.x, right.roi.y,
                right.depth_guided ? "yes" : "no");
    Rect inter = left.roi.intersect(right.roi);
    std::printf("RoI overlap  : %.1f %% — one detection can serve "
                "both eyes\n\n",
                100.0 * f64(inter.area()) / f64(left.roi.area()));

    // Two-eye NPU budget on the Pixel 7 Pro.
    DeviceProfile device = DeviceProfile::pixel7Pro();
    DnnUpscaler edsr(std::make_shared<const CompactSrNet>(), 2);
    int mono =
        maxRoiSizePixels(device.npu, edsr, 2, kRealTimeDeadlineMs);
    int stereo_edge = maxRoiSizePixels(device.npu, edsr, 2,
                                       kRealTimeDeadlineMs / 2.0);
    std::printf("NPU budget on %s:\n", device.name.c_str());
    std::printf("  mono RoI window  : %d px (one eye per frame)\n",
                mono);
    std::printf("  stereo RoI window: %d px per eye (both eyes per "
                "16.66 ms)\n",
                stereo_edge);
    std::printf("\nVR headsets sit ~5 cm from the eye with high-PPI "
                "panels, so per-eye foveal\nregions are small in "
                "panel inches; the %d px stereo budget remains "
                "usable.\n",
                stereo_edge);
    return 0;
}
