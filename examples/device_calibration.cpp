/**
 * @file
 * Device calibration report: the Fig. 6 step-1 capability probe for
 * both evaluation devices — foveal RoI sizing from the display
 * geometry (Sec. IV-B1), the maximum real-time RoI from the NPU
 * model, and the EDSR latency ladder across input sizes that the
 * probe walks.
 *
 * Usage: ./device_calibration
 */

#include <iostream>

#include "common/table.hh"
#include "device/profiles.hh"
#include "roi/foveal.hh"
#include "sr/upscaler.hh"

using namespace gssr;

int
main()
{
    std::cout << "GameStreamSR device calibration (Fig. 6 step-1)\n";
    std::cout << "================================================\n\n";

    FovealParams foveal;
    std::cout << "foveal visual angle    : " << foveal.visual_angle_deg
              << " deg\n";
    std::cout << "viewing distance       : "
              << foveal.viewing_distance_cm << " cm\n";
    std::cout << "foveal diameter        : "
              << TableWriter::num(fovealDiameterInches(foveal), 2)
              << " in (paper: ~1.25 in)\n\n";

    DnnUpscaler upscaler(std::make_shared<const CompactSrNet>(), 2);

    TableWriter table({"device", "ppi", "min RoI (px, LR)",
                       "max RoI (px, LR)", "negotiated window"});
    for (const DeviceProfile &device :
         {DeviceProfile::galaxyTabS8(), DeviceProfile::pixel7Pro()}) {
        int min_edge =
            minRoiSizePixels(foveal, device.display_ppi, 2);
        int max_edge = maxRoiSizePixels(device.npu, upscaler, 2);
        Size window =
            chooseRoiWindow(foveal, device.display_ppi, device.npu,
                            upscaler, 2, {1280, 720});
        table.addRow({device.name, TableWriter::num(device.display_ppi, 0),
                      std::to_string(min_edge),
                      std::to_string(max_edge),
                      std::to_string(window.width) + "x" +
                          std::to_string(window.height)});
    }
    table.renderText(std::cout);

    std::cout << "\nEDSR x2 NPU latency ladder (the probe's "
                 "measurements):\n";
    TableWriter ladder({"input (px)", "GMACs", "S8 Tab (ms)",
                        "Pixel 7 Pro (ms)", "meets 16.66 ms"});
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DeviceProfile pixel = DeviceProfile::pixel7Pro();
    for (int edge : {100, 172, 200, 250, 300, 340, 400, 500}) {
        i64 macs = upscaler.macs({edge, edge}, 2);
        f64 s8_ms = s8.npu.latencyMs(macs, i64(edge) * edge);
        f64 pixel_ms = pixel.npu.latencyMs(macs, i64(edge) * edge);
        ladder.addRow({std::to_string(edge) + "x" +
                           std::to_string(edge),
                       TableWriter::num(f64(macs) / 1e9, 1),
                       TableWriter::num(s8_ms, 1),
                       TableWriter::num(pixel_ms, 1),
                       s8_ms <= kRealTimeDeadlineMs &&
                               pixel_ms <= kRealTimeDeadlineMs
                           ? "yes"
                           : "no"});
    }
    ladder.renderText(std::cout);
    std::cout << "\npaper anchors: 300x300 -> 16.2 ms (S8) / 16.4 ms "
                 "(Pixel); 1280x720 -> ~217 / ~233 ms\n";
    return 0;
}
