/**
 * @file
 * Quickstart: the GameStreamSR pipeline end to end on one frame.
 *
 * Renders a Witcher 3-style frame (color + depth), detects the
 * depth-guided RoI on the "server", streams it through the codec,
 * and upscales it on a simulated Galaxy Tab S8 client — DNN SR on
 * the RoI, bilinear for the rest — then reports latency, energy and
 * quality against the native high-resolution render.
 *
 * Runs at reduced resolution so it completes in a few seconds:
 *   ./quickstart
 */

#include <cstdio>

#include "metrics/psnr.hh"
#include "pipeline/session.hh"
#include "sr/trainer.hh"

using namespace gssr;

int
main()
{
    std::printf("GameStreamSR quickstart\n");
    std::printf("=======================\n\n");

    // 1. A trained SR model (cached next to the binary after the
    //    first run).
    auto net = std::make_shared<const CompactSrNet>(
        trainedSrNet("quickstart_sr_weights.bin"));

    // 2. Session: G3 (Witcher 3) on a Galaxy Tab S8, streaming
    //    320x160 -> 640x320 over WiFi (reduced from the paper's
    //    720p -> 1440p so the example runs in seconds).
    SessionConfig config;
    config.game = GameId::G3_Witcher3;
    config.frames = 8;
    config.lr_size = {320, 160};
    config.codec.gop_size = 8;
    config.design = DesignKind::GameStreamSR;
    config.device = DeviceProfile::galaxyTabS8();
    config.sr_net = net;
    config.measure_quality = true;

    std::printf("streaming %d frames of %s on %s ...\n",
                config.frames, gameInfo(config.game).title,
                config.device.name.c_str());
    SessionResult result = runSession(config);

    // 3. Report.
    std::printf("\nper-frame pipeline (reference frame):\n");
    const FrameTrace &ref = result.traces.front();
    for (const auto &record : ref.records) {
        std::printf("  %-12s %-18s %7.2f ms %8.2f mJ\n",
                    stageName(record.stage),
                    resourceName(record.resource), record.latency_ms,
                    record.energy_mj);
    }
    std::printf("\nmotion-to-photon latency : %.1f ms\n",
                ref.mtpLatencyMs());
    std::printf("client throughput bound  : %.1f ms -> %.1f FPS\n",
                ref.clientBottleneckMs(),
                1000.0 / ref.clientBottleneckMs());
    std::printf("mean PSNR vs native HR   : %.2f dB\n",
                result.meanPsnrDb());
    std::printf("client energy / frame    : %.1f mJ\n",
                result.meanClientEnergyMj());
    std::printf("\nDone. See examples/streaming_session.cpp for the "
                "full design comparison.\n");
    return 0;
}
