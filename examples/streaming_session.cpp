/**
 * @file
 * Full streaming-session comparison: run one game through all three
 * client designs (GameStreamSR, the NEMO baseline, and the Sec. VI
 * SR-integrated decoder) on a chosen device and print the per-design
 * latency / throughput / energy / quality summary.
 *
 * Usage: ./streaming_session [G1..G10] [s8|pixel] [frames] [--trace]
 * Defaults: G3 on the Galaxy Tab S8, 16 frames at reduced
 * resolution (384x192 -> 768x384) so the run takes ~1 minute.
 *
 * With --trace, every stage of all three sessions is exported as
 * TRACE_session.json — open it in chrome://tracing or
 * https://ui.perfetto.dev to see the per-frame stage timeline, one
 * track per design.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "obs/telemetry.hh"
#include "pipeline/session.hh"
#include "sr/trainer.hh"

using namespace gssr;

namespace
{

GameId
parseGame(const char *name)
{
    for (const auto &info : tableOneGames())
        if (std::strcmp(info.short_name, name) == 0)
            return info.id;
    fatal("unknown game '", name, "' (use G1..G10)");
}

} // namespace

int
main(int argc, char **argv)
{
    bool trace = false;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            trace = true;
        else
            pos.push_back(argv[i]);
    }
    GameId game =
        pos.size() > 0 ? parseGame(pos[0]) : GameId::G3_Witcher3;
    DeviceProfile device =
        (pos.size() > 1 && std::strcmp(pos[1], "pixel") == 0)
            ? DeviceProfile::pixel7Pro()
            : DeviceProfile::galaxyTabS8();
    int frames = pos.size() > 2 ? std::atoi(pos[2]) : 16;

    obs::Telemetry telemetry(/*spans=*/trace);

    auto net = std::make_shared<const CompactSrNet>(
        trainedSrNet("streaming_session_sr_weights.bin"));

    std::printf("game   : %s (%s)\n", gameInfo(game).title,
                gameInfo(game).genre);
    std::printf("device : %s\n", device.name.c_str());
    std::printf("frames : %d (GOP %d) at 384x192 -> 768x384\n\n",
                frames, frames);

    TableWriter table({"design", "ref-mtp(ms)", "nonref-mtp(ms)",
                       "fps(ref)", "fps(nonref)", "energy(mJ/frame)",
                       "psnr(dB)", "lpips"});

    int track = 0;
    for (DesignKind design :
         {DesignKind::GameStreamSR, DesignKind::Nemo,
          DesignKind::SrDecoder}) {
        SessionConfig config;
        if (trace) {
            config.telemetry = &telemetry;
            config.telemetry_track = track++; // one track per design
        }
        config.game = game;
        config.frames = frames;
        config.lr_size = {384, 192};
        config.codec.gop_size = frames;
        config.design = design;
        config.device = device;
        config.sr_net = net;
        config.measure_quality = true;
        config.quality_stride = 2;
        config.measure_perceptual = true;
        config.perceptual_stride = 4;

        std::printf("running %s ...\n", designName(design));
        SessionResult r = runSession(config);
        table.addRow({
            designName(design),
            TableWriter::num(r.meanMtpMs(FrameType::Reference), 1),
            TableWriter::num(r.meanMtpMs(FrameType::NonReference), 1),
            TableWriter::num(r.outputFps(FrameType::Reference), 1),
            TableWriter::num(r.outputFps(FrameType::NonReference), 1),
            TableWriter::num(r.meanClientEnergyMj(), 1),
            TableWriter::num(r.meanPsnrDb(), 2),
            TableWriter::num(r.meanLpips(), 3),
        });
    }

    std::printf("\nNote: this example streams at a reduced\n"
                "resolution so it finishes quickly; the latency and\n"
                "energy columns therefore correspond to the reduced\n"
                "frame sizes. The bench/ binaries reproduce the\n"
                "paper's numbers at the full 720p -> 1440p operating\n"
                "point.\n\n");
    table.renderText(std::cout);

    if (trace) {
        telemetry.spanBuffer().writeChromeTraceFile(
            "TRACE_session.json");
        std::printf("\nwrote TRACE_session.json — open it in "
                    "chrome://tracing or https://ui.perfetto.dev\n");
    }
    return 0;
}
