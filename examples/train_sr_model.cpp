/**
 * @file
 * Train the CompactSrNet quality model on renderer output and save
 * the weights — the in-process equivalent of downloading a
 * pretrained EDSR. Benches and examples reuse the cache file.
 *
 * Usage: ./train_sr_model [iterations] [weights_path]
 * Defaults: 1200 iterations, "gssr_sr_weights.bin".
 */

#include <cstdio>
#include <cstdlib>

#include "codec/codec.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "sr/trainer.hh"
#include "sr/upscaler.hh"

using namespace gssr;

int
main(int argc, char **argv)
{
    TrainerConfig config;
    config.iterations = argc > 1 ? std::atoi(argv[1]) : 1200;
    std::string path = argc > 2 ? argv[2] : "gssr_sr_weights.bin";

    std::printf("training CompactSrNet for %d iterations ...\n",
                config.iterations);
    CompactSrNet net = trainedSrNet("", config);
    net.save(path);
    std::printf("weights saved to %s\n\n", path.c_str());

    // Held-out evaluation: frames from games and seeds outside the
    // training corpus.
    auto shared = std::make_shared<const CompactSrNet>(net);
    DnnUpscaler dnn(shared, 2);
    InterpUpscaler bilinear(InterpKernel::Bilinear);
    InterpUpscaler bicubic(InterpKernel::Bicubic);
    InterpUpscaler lanczos(InterpKernel::Lanczos3);

    std::printf("held-out PSNR (320x192 ground truth, x2 SR of the "
                "codec-decoded stream):\n");
    std::printf("  %-4s %8s %8s %8s %8s\n", "game", "dnn",
                "bilinear", "bicubic", "lanczos");
    f64 mean_gain = 0.0;
    int count = 0;
    CodecConfig stream_codec;
    stream_codec.gop_size = 1;
    for (GameId id : {GameId::G2_FarCry5, GameId::G6_GodOfWar,
                      GameId::G7_TombRaider,
                      GameId::G9_FarmingSimulator}) {
        GameWorld world(id, 77);
        ColorImage hr =
            renderScene(world.sceneAt(1.1), {320, 192}).color;
        // The client sees the compressed stream, not the raw
        // downsample — evaluate on what it actually upscales.
        GopEncoder encoder(stream_codec, {160, 96});
        FrameDecoder decoder(stream_codec, {160, 96});
        ColorImage lr = yuv420ToRgb(
            decoder.decode(encoder.encode(boxDownsample(hr, 2))));
        f64 p_dnn = psnr(dnn.upscale(lr, 2), hr);
        f64 p_bil = psnr(bilinear.upscale(lr, 2), hr);
        std::printf("  %-4s %8.2f %8.2f %8.2f %8.2f\n",
                    gameInfo(id).short_name, p_dnn, p_bil,
                    psnr(bicubic.upscale(lr, 2), hr),
                    psnr(lanczos.upscale(lr, 2), hr));
        mean_gain += p_dnn - p_bil;
        count += 1;
    }
    std::printf("\nmean DNN gain over bilinear: %+.2f dB\n",
                mean_gain / count);
    return 0;
}
