/**
 * @file
 * RoI visualizer: dumps the artifacts of the depth-guided RoI
 * pipeline for one game frame as PPM/PGM images —
 *
 *   <game>_frame.ppm      rendered color frame (Fig. 5a)
 *   <game>_depth.pgm      depth map, near = dark (Fig. 5b)
 *   <game>_processed.pgm  pre-processed importance map (Fig. 8)
 *   <game>_roi.ppm        color frame with the detected RoI outlined
 *
 * Usage: ./roi_visualizer [G1..G10|TD|SS] [width height]
 * Defaults: G3 at 640x360.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "frame/image_io.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"

using namespace gssr;

namespace
{

GameId
parseGame(const char *name)
{
    for (const auto &info : tableOneGames())
        if (std::strcmp(info.short_name, name) == 0)
            return info.id;
    if (std::strcmp(name, "TD") == 0)
        return GameId::TopDownStrategy;
    if (std::strcmp(name, "SS") == 0)
        return GameId::SideScroller;
    fatal("unknown game '", name, "' (use G1..G10, TD or SS)");
}

/** Draw a 2-pixel red rectangle outline. */
void
drawRect(ColorImage &img, const Rect &r)
{
    auto mark = [&](int x, int y) {
        if (x >= 0 && x < img.width() && y >= 0 && y < img.height())
            img.setPixel(x, y, 255, 30, 30);
    };
    for (int t = 0; t < 2; ++t) {
        for (int x = r.x; x < r.right(); ++x) {
            mark(x, r.y + t);
            mark(x, r.bottom() - 1 - t);
        }
        for (int y = r.y; y < r.bottom(); ++y) {
            mark(r.x + t, y);
            mark(r.right() - 1 - t, y);
        }
    }
}

/** Normalize a float map to an 8-bit grayscale image. */
PlaneU8
normalize(const PlaneF32 &map)
{
    f32 max_value = 1e-9f;
    for (f32 v : map.data())
        max_value = std::max(max_value, v);
    PlaneU8 out(map.width(), map.height());
    for (i64 i = 0; i < map.sampleCount(); ++i) {
        out.data()[size_t(i)] =
            u8(map.data()[size_t(i)] / max_value * 255.0f);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    GameId game = argc > 1 ? parseGame(argv[1]) : GameId::G3_Witcher3;
    int width = argc > 3 ? std::atoi(argv[2]) : 640;
    int height = argc > 3 ? std::atoi(argv[3]) : 360;

    const GameInfo &info = gameInfo(game);
    std::printf("rendering %s (%s) at %dx%d ...\n", info.title,
                info.genre, width, height);

    GameWorld world(game, 1);
    RenderOutput frame =
        renderScene(world.sceneAt(1.0), {width, height});

    std::string prefix = info.short_name;
    writePpm(prefix + "_frame.ppm", frame.color);
    writePgm(prefix + "_depth.pgm", frame.depth.toGrayscale());

    // Detect the RoI with a window scaled to the frame (the paper's
    // 300 px on 720p is ~23 % of the frame height).
    int edge = std::min({width, height, height * 300 / 720 * 2});
    RoiDetector detector(ServerProfile::gamingWorkstation());
    RoiDetection detection =
        detector.detect(frame.depth, {edge, edge});

    writePgm(prefix + "_processed.pgm",
             normalize(detection.preprocess.processed));

    ColorImage annotated = frame.color;
    drawRect(annotated, detection.roi);
    writePpm(prefix + "_roi.ppm", annotated);

    std::printf("depth guided      : %s\n",
                detection.depth_guided ? "yes" : "no (centre fallback)");
    std::printf("foreground thresh : %.3f (%.1f%% of pixels)\n",
                detection.preprocess.foreground_threshold,
                detection.preprocess.foreground_fraction * 100.0);
    std::printf("selected layer    : %d of %zu\n",
                detection.preprocess.selected_layer,
                detection.preprocess.layer_scores.size());
    std::printf("RoI               : x=%d y=%d %dx%d (score %.1f)\n",
                detection.roi.x, detection.roi.y, detection.roi.width,
                detection.roi.height, detection.score);
    std::printf("server GPU cost   : %.3f ms\n",
                detection.server_gpu_ms);
    std::printf("wrote %s_{frame.ppm,depth.pgm,processed.pgm,"
                "roi.ppm}\n", prefix.c_str());
    return 0;
}
